// The recalibration battery (PR 8): epoch-versioned registry bundles,
// background refit, and epoch-scoped cache invalidation.
//
// What is gated here, in dependency order:
//   - registry level: epochs advance monotonically, superseded bundles stay
//     alive for their pinners, and a refit is BIT-IDENTICAL to a fresh
//     fit_bundle() of the same appended corpus (refitting is re-fitting,
//     not an incremental approximation);
//   - cluster level: residency is lazy (fits == queried corpora), a
//     recalibration schedule is byte-reproducible across identically-seeded
//     runs, invalidation evicts EXACTLY the stale corpus's cache entries,
//     and one corpus's traffic cannot evict another's (per-corpus quotas);
//   - concurrency: requests in flight across an epoch swap each finish on
//     the epoch they were admitted under — every response byte-matches one
//     of the fixed per-epoch reference byte sets, under a seeded fuzz of
//     concurrent submitters racing recalibrations (the TSan job runs the
//     *Fuzz* filter with ISR_STRESS_ITERS scaled up).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cache.hpp"
#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "core/env.hpp"
#include "model/study.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {
namespace {

using serve::AdvisorRequest;
using serve::AdvisorResponse;

// The same fast corpus test_serve and test_cluster calibrate from: 36
// observations, fits well under a second.
model::StudyConfig tiny_calibration(std::uint64_t seed = 123) {
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = seed;
  return cfg;
}

// A reduced pass over the same grid with another seed: the shape of
// observations a drift measurement would append.
std::vector<model::Observation> drift_observations(std::uint64_t seed) {
  model::StudyConfig drift = tiny_calibration(seed);
  drift.samples_per_config = 1;
  return model::run_study(drift);
}

ClusterConfig tiny_cluster_config(int shards, std::size_t cache_entries) {
  ClusterConfig cfg;
  cfg.service.calibration = tiny_calibration();
  cfg.shards = shards;
  cfg.cache_entries = cache_entries;
  cfg.batch_size = 4;
  return cfg;
}

ClusterConfig two_corpus_config(int shards, std::size_t cache_entries) {
  ClusterConfig cfg = tiny_cluster_config(shards, cache_entries);
  CorpusConfig alt;
  alt.name = "alt";
  alt.service.calibration = tiny_calibration(124);
  cfg.corpora.push_back(std::move(alt));
  return cfg;
}

// Every arch x renderer x two sizes plus an error slot — the mixed shape
// the identity tests across the suite share.
std::vector<AdvisorRequest> mixed_requests(const std::string& corpus = "") {
  std::vector<AdvisorRequest> requests;
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const model::RendererKind kind :
         {model::RendererKind::kRayTrace, model::RendererKind::kRasterize,
          model::RendererKind::kVolume}) {
      for (const int edge : {256, 1024}) {
        AdvisorRequest req;
        req.arch = arch;
        req.renderer = kind;
        req.image_edge = edge;
        req.corpus = corpus;
        requests.push_back(req);
      }
    }
  }
  AdvisorRequest bad;
  bad.arch = "nope";
  bad.corpus = corpus;
  requests.push_back(bad);
  return requests;
}

std::vector<std::string> jsonl_of(const std::vector<AdvisorResponse>& responses) {
  std::vector<std::string> lines;
  lines.reserve(responses.size());
  for (const AdvisorResponse& r : responses) lines.push_back(serve::to_jsonl(r));
  return lines;
}

// --- Registry: epoch-versioned bundles --------------------------------------

TEST(RecalRegistryTest, InitialFitIsEpochOne) {
  serve::ModelRegistry registry;
  const model::StudyConfig cfg = tiny_calibration();
  const serve::BundlePtr bundle = registry.bundle_for(cfg);
  ASSERT_TRUE(bundle);
  EXPECT_EQ(bundle->epoch, 1u);
  EXPECT_EQ(bundle->fingerprint, serve::ModelRegistry::fingerprint(cfg));
  EXPECT_GT(bundle->corpus_size, 0u);
  EXPECT_EQ(registry.fits(), 1);
  EXPECT_EQ(registry.refits(), 0);
  // The shared-ownership and reference APIs hand out the same bundle, and
  // neither re-fits.
  EXPECT_EQ(&registry.models_for(cfg), bundle.get());
  EXPECT_EQ(registry.current(bundle->fingerprint).get(), bundle.get());
  EXPECT_EQ(registry.fits(), 1);
}

TEST(RecalRegistryTest, RefitAdvancesEpochMonotonicallyAndKeepsOldBundlesAlive) {
  serve::ModelRegistry registry;
  const model::StudyConfig cfg = tiny_calibration();
  const std::uint64_t fp = serve::ModelRegistry::fingerprint(cfg);
  std::vector<serve::BundlePtr> pinned = {registry.bundle_for(cfg)};
  for (std::uint64_t expect_epoch = 2; expect_epoch <= 4; ++expect_epoch) {
    registry.append_observations(fp, drift_observations(1000 + expect_epoch));
    const serve::BundlePtr fresh = registry.refit(fp);
    ASSERT_TRUE(fresh);
    EXPECT_EQ(fresh->epoch, expect_epoch);
    EXPECT_EQ(registry.current(fp).get(), fresh.get());
    pinned.push_back(fresh);
  }
  EXPECT_EQ(registry.fits(), 1);    // refits never count as fits
  EXPECT_EQ(registry.refits(), 3);
  // Every superseded epoch is still alive and readable: a pinner that
  // admitted under epoch N keeps evaluating epoch N's coefficients.
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(pinned[i]->epoch, static_cast<std::uint64_t>(i + 1));
    EXPECT_GT(pinned[i]->corpus_size, 0u);
    // Each refit folded a drift pass in, so the corpus only ever grows.
    if (i > 0) {
      EXPECT_GT(pinned[i]->corpus_size, pinned[i - 1]->corpus_size);
    }
  }
}

TEST(RecalRegistryTest, RefitMatchesFreshFitBitForBit) {
  // The load-bearing identity: registry.refit() of (fitted corpus +
  // appended observations) must produce the SAME BITS as fit_bundle() of
  // one fresh corpus containing the same observations in the same order.
  const model::StudyConfig cfg = tiny_calibration();
  const std::uint64_t fp = serve::ModelRegistry::fingerprint(cfg);

  serve::ModelRegistry registry;
  registry.bundle_for(cfg);
  const std::vector<model::Observation> extra = drift_observations(9001);
  ASSERT_TRUE(registry.append_observations(fp, extra));
  EXPECT_EQ(registry.pending_observations(fp), extra.size());
  const serve::BundlePtr refitted = registry.refit(fp);
  ASSERT_TRUE(refitted);
  EXPECT_EQ(registry.pending_observations(fp), 0u);

  std::vector<model::Observation> corpus = model::run_study(cfg);
  corpus.insert(corpus.end(), extra.begin(), extra.end());
  const serve::FittedModels fresh = serve::fit_bundle(cfg, corpus, /*epoch=*/2);

  EXPECT_EQ(refitted->epoch, fresh.epoch);
  EXPECT_EQ(refitted->fingerprint, fresh.fingerprint);
  EXPECT_EQ(refitted->corpus_size, fresh.corpus_size);
  ASSERT_EQ(refitted->entries.size(), fresh.entries.size());
  for (std::size_t i = 0; i < fresh.entries.size(); ++i) {
    EXPECT_EQ(refitted->entries[i].arch, fresh.entries[i].arch) << "entry " << i;
    EXPECT_EQ(refitted->entries[i].kind, fresh.entries[i].kind) << "entry " << i;
    // vector<double> equality is exact bit comparison for finite values.
    EXPECT_EQ(refitted->entries[i].model.paper_coefficients(),
              fresh.entries[i].model.paper_coefficients())
        << "entry " << i;
  }
  EXPECT_EQ(refitted->composite.coefficients(), fresh.composite.coefficients());
}

TEST(RecalRegistryTest, UnknownOrAdoptedFingerprintsAreNotRefittable) {
  serve::ModelRegistry fitted;
  const serve::BundlePtr bundle = fitted.bundle_for(tiny_calibration());

  serve::ModelRegistry registry;
  EXPECT_FALSE(registry.append_observations(0xDEADu, {}));
  EXPECT_EQ(registry.refit(0xDEADu), nullptr);
  EXPECT_EQ(registry.pending_observations(0xDEADu), 0u);
  EXPECT_EQ(registry.current(0xDEADu), nullptr);

  // An adopted bundle carries no corpus: it serves, but cannot be refitted.
  registry.adopt(*bundle);
  EXPECT_TRUE(registry.current(bundle->fingerprint));
  EXPECT_FALSE(registry.append_observations(bundle->fingerprint, {}));
  EXPECT_EQ(registry.refit(bundle->fingerprint), nullptr);
  EXPECT_EQ(registry.fits(), 0);  // adoption is not a fit
}

// --- Cluster: lazy residency -------------------------------------------------

TEST(RecalClusterTest, LazyResidencyFitsExactlyTheQueriedCorpora) {
  ClusterConfig cfg = two_corpus_config(2, 0);
  CorpusConfig spare;  // configured, never queried: must never fit
  spare.name = "spare";
  spare.service.calibration = tiny_calibration(125);
  cfg.corpora.push_back(std::move(spare));
  ServingCluster cluster(std::move(cfg));
  EXPECT_EQ(cluster.corpora(), 3);
  EXPECT_EQ(cluster.registry_fits(), 0);  // construction fits nothing

  std::vector<AdvisorRequest> requests = mixed_requests();
  const std::vector<AdvisorRequest> alt = mixed_requests("alt");
  requests.insert(requests.end(), alt.begin(), alt.end());
  const std::vector<AdvisorResponse> responses = cluster.serve_batch(requests);
  for (const AdvisorResponse& r : responses) EXPECT_FALSE(r.degraded());

  EXPECT_EQ(cluster.registry_fits(), 2);  // default + alt, NOT spare
  EXPECT_EQ(cluster.bundle_epoch(""), 1u);
  EXPECT_EQ(cluster.bundle_epoch("alt"), 1u);
  EXPECT_EQ(cluster.bundle_epoch("spare"), 0u);
  EXPECT_EQ(cluster.bundle_epoch("nope"), 0u);

  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.lazy_fits, 2);
  EXPECT_EQ(m.refits, 0);
  ASSERT_EQ(m.bundle_epoch.size(), 3u);
  EXPECT_EQ(m.bundle_epoch[0].first, "");
  EXPECT_EQ(m.bundle_epoch[0].second, 1u);
  EXPECT_EQ(m.bundle_epoch[1].first, "alt");
  EXPECT_EQ(m.bundle_epoch[1].second, 1u);
  EXPECT_EQ(m.bundle_epoch[2].first, "spare");
  EXPECT_EQ(m.bundle_epoch[2].second, 0u);
}

TEST(RecalClusterTest, AppendAndRefitAdvanceTheEpochWithoutQueries) {
  ServingCluster cluster(tiny_cluster_config(2, 0));
  // append_observations forces residency: the corpus fits now even though
  // no query ever named it.
  EXPECT_TRUE(cluster.append_observations("", drift_observations(31)));
  EXPECT_EQ(cluster.registry_fits(), 1);
  EXPECT_EQ(cluster.bundle_epoch(""), 1u);

  EXPECT_EQ(cluster.refit(""), 2u);  // lower bound on the published epoch
  cluster.wait_refits();
  EXPECT_EQ(cluster.bundle_epoch(""), 2u);
  EXPECT_EQ(cluster.metrics().refits, 1);
  EXPECT_EQ(cluster.registry_fits(), 1);  // a refit is not a fit

  // Unknown names are rejected on every recalibration surface.
  EXPECT_FALSE(cluster.append_observations("nope", {}));
  EXPECT_EQ(cluster.refit("nope"), 0u);
  EXPECT_EQ(cluster.recalibrate("nope"), 0u);
}

// --- Cluster: deterministic recalibration ------------------------------------

TEST(RecalClusterTest, RecalibrationScheduleIsByteReproducible) {
  // Two identically-configured clusters (independent primaries) running
  // the same serve/recalibrate/serve schedule must emit byte-identical
  // responses in both passes: the drift study's seed is a pure function of
  // (calibration seed, superseded epoch), never the wall clock.
  const std::vector<AdvisorRequest> requests = mixed_requests();
  std::vector<std::vector<std::string>> pass1, pass2;
  for (int run = 0; run < 2; ++run) {
    ServingCluster cluster(tiny_cluster_config(2, 0));
    pass1.push_back(jsonl_of(cluster.serve_batch(requests)));
    EXPECT_EQ(cluster.recalibrate(""), 2u);
    cluster.wait_refits();
    EXPECT_EQ(cluster.bundle_epoch(""), 2u);
    pass2.push_back(jsonl_of(cluster.serve_batch(requests)));
  }
  EXPECT_EQ(pass1[0], pass1[1]);
  EXPECT_EQ(pass2[0], pass2[1]);
  // The recalibration folded new observations in, so epoch 2 really is a
  // different model for at least one request shape.
  int differing = 0;
  for (std::size_t i = 0; i < pass1[0].size(); ++i)
    if (pass1[0][i] != pass2[0][i]) ++differing;
  EXPECT_GT(differing, 0);
}

// --- Cluster: epoch-scoped invalidation and quotas ---------------------------

TEST(RecalClusterTest, InvalidationEvictsExactlyTheStaleCorpusEntries) {
  ServingCluster cluster(two_corpus_config(2, 512));
  std::vector<AdvisorRequest> requests = mixed_requests();
  const std::vector<AdvisorRequest> alt = mixed_requests("alt");
  requests.insert(requests.end(), alt.begin(), alt.end());
  const std::size_t per_corpus = requests.size() / 2;

  cluster.serve_batch(requests);  // cold: both partitions warm
  const ClusterMetrics cold = cluster.metrics();
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.epoch_invalidations, 0);

  EXPECT_EQ(cluster.recalibrate("alt"), 2u);
  cluster.wait_refits();
  EXPECT_EQ(cluster.bundle_epoch("alt"), 2u);
  EXPECT_EQ(cluster.bundle_epoch(""), 1u);  // untouched corpus, untouched epoch

  // The swap swept EXACTLY alt's partition: every one of alt's entries,
  // none of default's.
  EXPECT_EQ(cluster.metrics().epoch_invalidations,
            static_cast<long>(per_corpus));

  // Warm pass: default's half still hits; alt's half re-evaluates at
  // epoch 2 and re-populates.
  cluster.serve_batch(requests);
  const ClusterMetrics warm = cluster.metrics();
  EXPECT_EQ(warm.cache_hits, static_cast<long>(per_corpus));

  // Third pass: everything hits again — the invalidation was a one-time
  // sweep, not a lingering penalty.
  cluster.serve_batch(requests);
  EXPECT_EQ(cluster.metrics().cache_hits - warm.cache_hits,
            static_cast<long>(requests.size()));
}

TEST(RecalClusterTest, OneCorpusTrafficCannotEvictAnotherCorpusCache) {
  // Quota direction 2 (test_cluster floods the default corpus): here the
  // NAMED corpus floods and the default stays warm.
  ServingCluster cluster(two_corpus_config(2, 64));
  AdvisorRequest a, b;
  a.image_edge = 256;
  b.image_edge = 512;
  cluster.serve_batch({a, b});  // warm the default partition

  std::vector<AdvisorRequest> flood;
  for (int i = 0; i < 96; ++i) {  // 96 distinct keys >> the 64-entry cache
    AdvisorRequest r;
    r.corpus = "alt";
    r.image_edge = 64 + i;
    flood.push_back(std::move(r));
  }
  cluster.serve_batch(flood);

  const long hits_before = cluster.metrics().cache_hits;
  cluster.serve_batch({a, b});
  EXPECT_EQ(cluster.metrics().cache_hits - hits_before, 2);
}

// --- Concurrency: in-flight requests pin their admitted epoch ----------------

// Reference byte sets per epoch for `requests` under `config`'s default
// corpus: index [e][i] is slot i's bytes at epoch e+1. A fresh cluster per
// call, cache off, fully synchronized — the fixed-epoch-schedule oracle.
std::vector<std::vector<std::string>> bytes_per_epoch(
    const ClusterConfig& config, const std::vector<AdvisorRequest>& requests,
    int epochs) {
  ServingCluster reference(config);
  std::vector<std::vector<std::string>> bytes;
  bytes.push_back(jsonl_of(reference.serve_batch(requests)));
  for (int e = 2; e <= epochs; ++e) {
    reference.recalibrate("");
    reference.wait_refits();
    bytes.push_back(jsonl_of(reference.serve_batch(requests)));
  }
  return bytes;
}

TEST(RecalFuzzTest, SubmittersRacingRefitsStayOnAdmittedEpochs) {
  // Seeded stress rounds: concurrent submitters hammer the cluster while
  // the main thread schedules recalibrations. Every response must be
  // byte-identical to SOME epoch's reference bytes for its slot — a torn
  // read, a half-swapped bundle, or a request evaluated partly on each
  // epoch would produce bytes outside every reference set. The TSan CI job
  // runs this filter with ISR_STRESS_ITERS raised; a failure prints its
  // seed for replay.
  const long rounds = core::env_long("ISR_STRESS_ITERS", 3);
  const std::vector<AdvisorRequest> requests = mixed_requests();
  constexpr int kSubmitters = 3;
  constexpr int kPassesPerSubmitter = 2;

  for (long seed = 0; seed < rounds; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    const int shards = 1 + static_cast<int>(seed % 3);
    const int epochs = 2 + static_cast<int>(seed % 2);
    ClusterConfig config = tiny_cluster_config(shards, 0);
    config.batch_deadline_ms = 0.1;
    const std::vector<std::vector<std::string>> reference =
        bytes_per_epoch(config, requests, epochs);

    ServingCluster cluster(config);
    cluster.serve_batch({requests[0]});  // force epoch 1 before the race

    std::atomic<bool> failed{false};
    std::vector<std::thread> submitters;
    std::vector<std::string> errors(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int pass = 0; pass < kPassesPerSubmitter; ++pass) {
          const std::vector<AdvisorResponse> responses =
              cluster.serve_batch(requests);
          for (std::size_t i = 0; i < responses.size(); ++i) {
            const std::string got = serve::to_jsonl(responses[i]);
            bool known = false;
            for (const std::vector<std::string>& epoch_bytes : reference)
              if (epoch_bytes[i] == got) known = true;
            if (!known) {
              failed.store(true);
              errors[static_cast<std::size_t>(t)] =
                  "slot " + std::to_string(i) + " answered off-epoch bytes: " + got;
              return;
            }
          }
        }
      });
    }
    for (int e = 2; e <= epochs; ++e) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      cluster.recalibrate("");
      cluster.wait_refits();
    }
    for (std::thread& t : submitters) t.join();
    for (const std::string& error : errors)
      EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(cluster.bundle_epoch(""), static_cast<std::uint64_t>(epochs));
    EXPECT_EQ(cluster.metrics().refits, epochs - 1);
  }
}

}  // namespace
}  // namespace isr::cluster
