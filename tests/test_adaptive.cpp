// Tests for the Chapter VI extensions: on-line model refinement and the
// adaptive in situ planning layer.
#include <gtest/gtest.h>

#include <cmath>

#include "insitu/adaptive.hpp"
#include "math/rng.hpp"
#include "model/online.hpp"

namespace isr {
namespace {

using model::ModelInputs;
using model::OnlineModel;
using model::RendererKind;
using model::RenderSample;

RenderSample rast_sample(Rng& rng, double noise = 0.05) {
  RenderSample s;
  s.inputs.objects = rng.uniform(1e4, 1e6);
  s.inputs.active_pixels = rng.uniform(1e4, 1e6);
  s.inputs.visible_objects = std::min(s.inputs.objects, s.inputs.active_pixels);
  s.inputs.pixels_per_tri = rng.uniform(2, 10);
  s.render_seconds = (1.3e-8 * s.inputs.objects +
                      2e-9 * s.inputs.visible_objects * s.inputs.pixels_per_tri + 1e-2) *
                     (1.0 + noise * rng.uniform(-1, 1));
  return s;
}

RenderSample rt_sample(Rng& rng, double noise = 0.05) {
  RenderSample s;
  s.inputs.objects = rng.uniform(1e4, 1e6);
  s.inputs.active_pixels = rng.uniform(1e4, 1e6);
  s.build_seconds = 5e-8 * s.inputs.objects + 1e-3;
  s.render_seconds =
      (2e-9 * s.inputs.active_pixels * std::log2(s.inputs.objects) + 5e-3) *
      (1.0 + noise * rng.uniform(-1, 1));
  return s;
}

TEST(OnlineModel, NotReadyUntilEnoughObservations) {
  OnlineModel m(RendererKind::kRasterize, 4);
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(m.ready()) << "after " << i << " observations";
    m.observe(rast_sample(rng));
  }
  // 6th observation crosses the minimum corpus size.
  m.observe(rast_sample(rng));
  EXPECT_TRUE(m.ready());
  EXPECT_EQ(m.observation_count(), 6u);
}

TEST(OnlineModel, AccuracyImprovesWithMoreData) {
  Rng rng(2);
  OnlineModel m(RendererKind::kRasterize, 4);
  for (int i = 0; i < 8; ++i) m.observe(rast_sample(rng, 0.15));
  // Probe error with few observations vs many.
  Rng probe_rng(77);
  auto mean_err = [&]() {
    Rng pr(99);
    double err = 0;
    for (int i = 0; i < 50; ++i) {
      const RenderSample truth = rast_sample(pr, 0.0);
      err += std::abs(m.predict(truth.inputs) - truth.render_seconds) / truth.render_seconds;
    }
    return err / 50;
  };
  const double early = mean_err();
  for (int i = 0; i < 200; ++i) m.observe(rast_sample(rng, 0.15));
  const double late = mean_err();
  EXPECT_LT(late, early + 1e-12);
  EXPECT_LT(late, 0.1);
  (void)probe_rng;
}

TEST(OnlineModel, RefitIntervalBatchesWork) {
  Rng rng(3);
  OnlineModel m(RendererKind::kRasterize, 100);  // long interval
  for (int i = 0; i < 6; ++i) m.observe(rast_sample(rng));
  ASSERT_TRUE(m.ready());  // first fit happens as soon as possible
  const double before = m.predict(rast_sample(rng).inputs);
  // More data arrives but no refit until the interval elapses...
  for (int i = 0; i < 10; ++i) m.observe(rast_sample(rng));
  const double unchanged = m.predict(rast_sample(rng).inputs);
  (void)before;
  (void)unchanged;
  m.refit();  // ...or a forced refit.
  EXPECT_TRUE(m.ready());
}

TEST(AdaptivePlanner, UncalibratedPlannerSaysSo) {
  insitu::AdaptivePlanner planner;
  const insitu::Decision d = planner.plan(100, 8, 1024 * 1024);
  EXPECT_FALSE(d.calibrated);
  EXPECT_FALSE(d.feasible);
}

insitu::AdaptivePlanner calibrated_planner() {
  insitu::AdaptivePlanner planner;
  Rng rng(4);
  for (int i = 0; i < 64; ++i) {
    planner.observe(RendererKind::kRasterize, rast_sample(rng));
    planner.observe(RendererKind::kRayTrace, rt_sample(rng));
  }
  return planner;
}

TEST(AdaptivePlanner, PicksRayTracingForBigDataSmallImages) {
  insitu::AdaptivePlanner planner = calibrated_planner();
  const insitu::Decision d =
      planner.plan(/*n=*/500, /*tasks=*/32, /*pixels=*/384.0 * 384.0, false, /*frames=*/100);
  EXPECT_TRUE(d.calibrated);
  EXPECT_TRUE(d.feasible);  // no constraints set
  EXPECT_EQ(d.kind, RendererKind::kRayTrace);
}

TEST(AdaptivePlanner, PicksRasterizationForBigImagesSmallData) {
  insitu::AdaptivePlanner planner = calibrated_planner();
  const insitu::Decision d = planner.plan(/*n=*/60, /*tasks=*/32, /*pixels=*/4096.0 * 4096.0);
  EXPECT_EQ(d.kind, RendererKind::kRasterize);
}

TEST(AdaptivePlanner, TimeConstraintMakesPlansInfeasible) {
  insitu::AdaptivePlanner planner = calibrated_planner();
  insitu::Constraints c;
  c.max_seconds = 1e-9;  // nothing can render this fast
  planner.set_constraints(c);
  const insitu::Decision d = planner.plan(200, 32, 1024.0 * 1024.0);
  EXPECT_FALSE(d.feasible);
  EXPECT_GT(d.predicted_seconds, 1e-9);  // still reports the cheapest option
}

TEST(AdaptivePlanner, MemoryConstraintExcludesTheBvh) {
  insitu::AdaptivePlanner planner = calibrated_planner();
  const double pixels = 512.0 * 512.0;
  // Tight memory: the ray tracer's BVH does not fit, rasterization does.
  const model::ModelInputs rt_in =
      model::map_configuration(RendererKind::kRayTrace, 400, 1, pixels);
  const double rt_bytes =
      insitu::AdaptivePlanner::estimate_bytes(RendererKind::kRayTrace, rt_in, pixels);
  insitu::Constraints c;
  c.max_bytes = rt_bytes * 0.5;
  planner.set_constraints(c);
  const insitu::Decision d = planner.plan(400, 1, pixels);
  if (d.feasible) {
    EXPECT_EQ(d.kind, RendererKind::kRasterize);
  }
}

TEST(AdaptivePlanner, ByteEstimatesScaleSanely) {
  model::ModelInputs small_in, big_in;
  small_in.objects = 1e4;
  big_in.objects = 1e7;
  EXPECT_LT(insitu::AdaptivePlanner::estimate_bytes(RendererKind::kRayTrace, small_in, 1e5),
            insitu::AdaptivePlanner::estimate_bytes(RendererKind::kRayTrace, big_in, 1e5));
  // Volume rendering's footprint is independent of cell count (zero-copy).
  EXPECT_EQ(insitu::AdaptivePlanner::estimate_bytes(RendererKind::kVolume, small_in, 1e5),
            insitu::AdaptivePlanner::estimate_bytes(RendererKind::kVolume, big_in, 1e5));
}

}  // namespace
}  // namespace isr
