// Virtual-MPI and compositing tests: the three sort-last algorithms must
// reproduce the serial reference composite bit-for-bit (surface and volume
// modes), and the network model must behave sensibly.
#include <gtest/gtest.h>

#include "comm/compositor.hpp"
#include "core/thread_pool.hpp"
#include "math/rng.hpp"

namespace isr::comm {
namespace {

// Builds rank sub-images with disjoint-ish random blobs; depth order given
// by rank index.
std::vector<RankImage> random_rank_images(int ranks, int width, int height,
                                          std::uint64_t seed, bool overlapping) {
  std::vector<RankImage> out(static_cast<std::size_t>(ranks));
  Rng rng(seed);
  for (int r = 0; r < ranks; ++r) {
    RankImage& ri = out[static_cast<std::size_t>(r)];
    ri.image.resize(width, height);
    ri.image.clear();
    ri.view_depth = static_cast<float>(r) + rng.next_float() * 0.5f;
    // A filled rectangle per rank; overlapping mode makes them share pixels.
    const int x0 = overlapping ? 0 : (width * r) / ranks;
    const int x1 = overlapping ? width : (width * (r + 1)) / ranks;
    for (int y = height / 4; y < (3 * height) / 4; ++y)
      for (int x = x0; x < x1; ++x) {
        const float a = 0.3f + 0.5f * rng.next_float();
        ri.image.pixel(x, y) = {a * rng.next_float(), a * rng.next_float(),
                                a * rng.next_float(), a};
        ri.image.depth(x, y) = ri.view_depth + rng.next_float();
      }
  }
  return out;
}

class CompositorAlgos
    : public ::testing::TestWithParam<std::tuple<CompositeAlgorithm, CompositeMode, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CompositorAlgos,
    ::testing::Combine(::testing::Values(CompositeAlgorithm::kDirectSend,
                                         CompositeAlgorithm::kBinarySwap,
                                         CompositeAlgorithm::kRadixK),
                       ::testing::Values(CompositeMode::kSurface, CompositeMode::kVolume),
                       ::testing::Values(1, 2, 4, 8)));

TEST_P(CompositorAlgos, MatchesSerialReference) {
  const auto [algo, mode, ranks] = GetParam();
  const auto inputs = random_rank_images(ranks, 64, 48, 42u + static_cast<unsigned>(ranks), true);
  Comm comm(ranks);
  const CompositeResult result = composite(comm, inputs, mode, algo, 4);
  const render::Image reference = composite_reference(inputs, mode);
  EXPECT_LT(result.image.rms_difference(reference), 1e-6)
      << "algorithm/mode/ranks mismatch";
  if (ranks > 1)
    EXPECT_GT(result.simulated_seconds, 0.0);
  else
    EXPECT_DOUBLE_EQ(result.simulated_seconds, 0.0);  // nothing to exchange
}

// Exact equality of two images — the compositor's parallel-blend contract
// is bitwise, not approximate.
bool images_bit_identical(const render::Image& a, const render::Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (std::size_t p = 0; p < a.pixel_count(); ++p) {
    const Vec4f& pa = a.pixels()[p];
    const Vec4f& pb = b.pixels()[p];
    if (pa.x != pb.x || pa.y != pb.y || pa.z != pb.z || pa.w != pb.w) return false;
    if (a.depths()[p] != b.depths()[p]) return false;
  }
  return true;
}

TEST_P(CompositorAlgos, PoolBlendBitIdenticalAtAnyThreadCount) {
  // The per-round blend fan-out must not change a single bit of the image
  // or a single simulated metric: serial (no pool), a 1-thread pool, and a
  // 4-thread pool all reproduce each other exactly.
  const auto [algo, mode, ranks] = GetParam();
  const auto inputs = random_rank_images(ranks, 64, 48, 99u + static_cast<unsigned>(ranks), true);

  Comm serial_comm(ranks);
  const CompositeResult serial = composite(serial_comm, inputs, mode, algo, 4, nullptr);

  core::ThreadPool pool1(1), pool4(4);
  for (core::ThreadPool* pool : {&pool1, &pool4}) {
    Comm comm(ranks);
    const CompositeResult pooled = composite(comm, inputs, mode, algo, 4, pool);
    EXPECT_TRUE(images_bit_identical(serial.image, pooled.image))
        << "pool size " << pool->size();
    // Communication accounting runs serially in a fixed order regardless of
    // the pool, so the simulated measurements are exactly reproduced too.
    EXPECT_EQ(serial.simulated_seconds, pooled.simulated_seconds);
    EXPECT_EQ(serial.bytes_sent, pooled.bytes_sent);
    EXPECT_EQ(serial.messages, pooled.messages);
    EXPECT_EQ(serial.avg_active_pixels, pooled.avg_active_pixels);
  }
}

TEST(Compositor, RadixKHandlesNonPowerOfTwo) {
  for (const int ranks : {3, 6, 12}) {
    const auto inputs = random_rank_images(ranks, 40, 40, 7u + static_cast<unsigned>(ranks), true);
    Comm comm(ranks);
    const CompositeResult result =
        composite(comm, inputs, CompositeMode::kVolume, CompositeAlgorithm::kRadixK, 4);
    const render::Image reference = composite_reference(inputs, CompositeMode::kVolume);
    EXPECT_LT(result.image.rms_difference(reference), 1e-6) << ranks << " ranks";
  }
}

TEST(Compositor, BinarySwapRejectsNonPowerOfTwo) {
  const auto inputs = random_rank_images(3, 16, 16, 1, true);
  Comm comm(3);
  EXPECT_THROW(composite(comm, inputs, CompositeMode::kSurface,
                         CompositeAlgorithm::kBinarySwap),
               std::invalid_argument);
}

TEST(Compositor, VolumeOrderIndependentOfInputOrder) {
  // Shuffling the input array must not change the result: visibility
  // ordering comes from view_depth, not array position.
  auto inputs = random_rank_images(4, 32, 32, 11, true);
  Comm comm(4);
  const render::Image a =
      composite(comm, inputs, CompositeMode::kVolume, CompositeAlgorithm::kDirectSend).image;
  std::swap(inputs[0], inputs[3]);
  std::swap(inputs[1], inputs[2]);
  const render::Image b =
      composite(comm, inputs, CompositeMode::kVolume, CompositeAlgorithm::kDirectSend).image;
  EXPECT_LT(a.rms_difference(b), 1e-7);
}

TEST(Compositor, SurfaceModeKeepsNearestFragment) {
  std::vector<RankImage> inputs(2);
  for (int r = 0; r < 2; ++r) {
    inputs[static_cast<std::size_t>(r)].image.resize(4, 4);
    inputs[static_cast<std::size_t>(r)].image.clear();
    inputs[static_cast<std::size_t>(r)].view_depth = static_cast<float>(r);
  }
  inputs[0].image.pixel(1, 1) = {1, 0, 0, 1};
  inputs[0].image.depth(1, 1) = 5.0f;
  inputs[1].image.pixel(1, 1) = {0, 1, 0, 1};
  inputs[1].image.depth(1, 1) = 2.0f;  // closer: must win
  Comm comm(2);
  const render::Image out =
      composite(comm, inputs, CompositeMode::kSurface, CompositeAlgorithm::kDirectSend).image;
  EXPECT_FLOAT_EQ(out.pixel(1, 1).y, 1.0f);
  EXPECT_FLOAT_EQ(out.pixel(1, 1).x, 0.0f);
  EXPECT_FLOAT_EQ(out.depth(1, 1), 2.0f);
}

TEST(Compositor, MoreActivePixelsCostMoreTime) {
  const auto sparse = random_rank_images(4, 128, 128, 3, false);
  const auto dense = random_rank_images(4, 128, 128, 3, true);
  Comm c1(4), c2(4);
  const double t_sparse =
      composite(c1, sparse, CompositeMode::kVolume, CompositeAlgorithm::kRadixK)
          .simulated_seconds;
  const double t_dense =
      composite(c2, dense, CompositeMode::kVolume, CompositeAlgorithm::kRadixK)
          .simulated_seconds;
  EXPECT_GT(t_dense, t_sparse);
}

TEST(Compositor, CompressedBytesScaleWithActivePixels) {
  render::Image img(64, 64);
  img.clear();
  const std::size_t empty = compressed_bytes(img, 0, img.pixel_count());
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 64; ++x) {
      img.pixel(x, y) = {1, 1, 1, 1};
      img.depth(x, y) = 1.0f;
    }
  const std::size_t half = compressed_bytes(img, 0, img.pixel_count());
  EXPECT_GT(half, empty + 2000);
}

TEST(Comm, SendAdvancesClocks) {
  Comm comm(2);
  comm.send(0, 1, 1 << 20);
  EXPECT_GT(comm.clock(1), comm.clock(0));
  EXPECT_GT(comm.clock(1), 0.0001);  // 1MB at 5GB/s = 200us + latency
  EXPECT_EQ(comm.total_bytes_sent(), static_cast<std::size_t>(1 << 20));
  EXPECT_EQ(comm.message_count(), 1u);
}

TEST(Comm, ReceiverWaitsForSender) {
  Comm comm(2);
  comm.add_compute(0, 1.0);  // sender busy for a second
  comm.send(0, 1, 100);
  EXPECT_GT(comm.clock(1), 1.0);
}

TEST(Comm, ExchangeSynchronizesPair) {
  Comm comm(2);
  comm.add_compute(0, 0.5);
  comm.exchange(0, 1, 1000, 2000);
  EXPECT_DOUBLE_EQ(comm.clock(0), comm.clock(1));
  EXPECT_GT(comm.clock(0), 0.5);
}

TEST(Comm, BarrierAlignsAllRanks) {
  Comm comm(4);
  comm.add_compute(2, 3.0);
  comm.barrier();
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(comm.clock(r), 3.0);
}

TEST(Comm, ResetClears) {
  Comm comm(2);
  comm.send(0, 1, 100);
  comm.reset();
  EXPECT_DOUBLE_EQ(comm.max_clock(), 0.0);
  EXPECT_EQ(comm.total_bytes_sent(), 0u);
}

}  // namespace
}  // namespace isr::comm
