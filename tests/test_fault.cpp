// Tests for the fault-tolerance layer (PR 7): the deterministic fault
// injector (pure-hash schedules, env/CSV parsing, fail-safe typos), the
// ordered queue's shutdown edges (close must release blocked producers and
// parked consumers), and the cluster's chaos behavior — supervised workers
// that survive injected eval throws, watchdog-driven crash restarts that
// re-drive the held batch, failover along the rendezvous order, bounded
// retries that end in explicit degraded responses, fit failures served
// degraded instead of crashing boot, and the determinism contract: a fixed
// fault seed reproduces the same degraded bytes on a fresh cluster, and a
// disarmed injector leaves every byte identical to a fault-free build.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "cluster/stream.hpp"
#include "core/batch_queue.hpp"
#include "core/fault.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {
namespace {

using core::FaultConfig;
using core::FaultInjector;
using core::FaultSite;
using serve::AdvisorRequest;
using serve::AdvisorResponse;

std::uint32_t site_mask(FaultSite site) { return 1u << static_cast<int>(site); }

// --- Fault injector ----------------------------------------------------------

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfSeedSiteAndKeys) {
  FaultConfig config;
  config.seed = 42;
  config.rate = 0.5;
  config.sites = (1u << core::kFaultSiteCount) - 1u;
  FaultInjector a(config);
  FaultInjector b(config);

  // Two injectors with the same config agree on every opportunity — the
  // schedule is a hash, not a shared RNG stream whose draws would depend
  // on who asked first.
  int fired = 0;
  for (std::uint64_t k0 = 0; k0 < 8; ++k0)
    for (std::uint64_t k1 = 0; k1 < 8; ++k1)
      for (std::uint64_t k2 = 0; k2 < 3; ++k2) {
        const bool fa = a.should_fire(FaultSite::kShardEvalThrow, k0, k1, k2);
        const bool fb = b.should_fire(FaultSite::kShardEvalThrow, k0, k1, k2);
        EXPECT_EQ(fa, fb) << k0 << "," << k1 << "," << k2;
        if (fa) ++fired;
      }
  // Rate 0.5 over 192 opportunities: both outcomes must occur.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 192);
  EXPECT_EQ(a.fired(FaultSite::kShardEvalThrow), fired);
  EXPECT_EQ(a.total_fired(), fired);

  // Different sites get independent schedules off the same keys.
  bool differs = false;
  for (std::uint64_t k = 0; k < 64 && !differs; ++k)
    differs = a.should_fire(FaultSite::kWorkerCrash, k) !=
              b.should_fire(FaultSite::kQueueStall, k);
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, RateOneAlwaysFiresAndDisarmedNeverDoes) {
  FaultConfig config;
  config.seed = 7;
  config.rate = 1.0;
  config.sites = site_mask(FaultSite::kShardEvalThrow);
  FaultInjector always(config);
  for (std::uint64_t k = 0; k < 32; ++k)
    EXPECT_TRUE(always.should_fire(FaultSite::kShardEvalThrow, k));
  // A site outside the mask never fires even at rate 1.0.
  for (std::uint64_t k = 0; k < 32; ++k)
    EXPECT_FALSE(always.should_fire(FaultSite::kWorkerCrash, k));
  EXPECT_EQ(always.fired(FaultSite::kWorkerCrash), 0);

  FaultInjector disarmed;  // default: seed 0
  EXPECT_FALSE(disarmed.armed());
  for (std::uint64_t k = 0; k < 32; ++k)
    EXPECT_FALSE(disarmed.should_fire(FaultSite::kShardEvalThrow, k));
  EXPECT_EQ(disarmed.total_fired(), 0);

  config.rate = 0.0;  // seed + sites but zero rate: still disarmed
  EXPECT_FALSE(FaultConfig(config).armed());
}

TEST(FaultInjectorTest, ParseSitesHandlesTokensAllAndGarbage) {
  std::uint32_t mask = 0;
  std::string error;
  ASSERT_TRUE(FaultConfig::parse_sites("eval-throw,worker-crash", mask, error)) << error;
  EXPECT_EQ(mask, site_mask(FaultSite::kShardEvalThrow) |
                      site_mask(FaultSite::kWorkerCrash));
  ASSERT_TRUE(FaultConfig::parse_sites("all", mask, error)) << error;
  EXPECT_EQ(mask, (1u << core::kFaultSiteCount) - 1u);
  ASSERT_TRUE(FaultConfig::parse_sites("fit-fail,,queue-stall,", mask, error))
      << error;  // empty segments tolerated
  EXPECT_EQ(mask, site_mask(FaultSite::kCorpusFitFail) |
                      site_mask(FaultSite::kQueueStall));

  EXPECT_FALSE(FaultConfig::parse_sites("eval-throw,typo", mask, error));
  EXPECT_NE(error.find("typo"), std::string::npos) << error;
  EXPECT_FALSE(FaultConfig::parse_sites("", mask, error));
  EXPECT_FALSE(FaultConfig::parse_sites(",,", mask, error));

  // Token round trip for every site.
  for (int s = 0; s < core::kFaultSiteCount; ++s) {
    FaultSite site;
    ASSERT_TRUE(core::fault_site_from_token(
        core::fault_site_name(static_cast<FaultSite>(s)), site));
    EXPECT_EQ(static_cast<int>(site), s);
  }
  FaultSite site;
  EXPECT_FALSE(core::fault_site_from_token("garbage", site));
}

TEST(FaultInjectorTest, FromEnvReadsKnobsAndFailsSafeOnTypos) {
  const auto clear_env = [] {
    unsetenv("ISR_FAULT_SEED");
    unsetenv("ISR_FAULT_RATE");
    unsetenv("ISR_FAULT_SITES");
    unsetenv("ISR_FAULT_STALL_MS");
  };
  clear_env();

  // Unset environment: disarmed defaults.
  EXPECT_FALSE(FaultConfig::from_env().armed());

  // Seed alone enables every site at the default rate.
  setenv("ISR_FAULT_SEED", "9001", 1);
  FaultConfig config = FaultConfig::from_env();
  EXPECT_TRUE(config.armed());
  EXPECT_EQ(config.seed, 9001u);
  EXPECT_EQ(config.sites, (1u << core::kFaultSiteCount) - 1u);

  // Explicit knobs.
  setenv("ISR_FAULT_RATE", "0.25", 1);
  setenv("ISR_FAULT_SITES", "eval-throw", 1);
  setenv("ISR_FAULT_STALL_MS", "5", 1);
  config = FaultConfig::from_env();
  EXPECT_DOUBLE_EQ(config.rate, 0.25);
  EXPECT_EQ(config.sites, site_mask(FaultSite::kShardEvalThrow));
  EXPECT_EQ(config.stall_ms, 5);

  // A typo'd site list disables injection entirely (fail safe) instead of
  // silently running half a chaos schedule.
  setenv("ISR_FAULT_SITES", "eval-thorw", 1);
  config = FaultConfig::from_env();
  EXPECT_FALSE(config.armed());
  EXPECT_EQ(config.sites, 0u);

  clear_env();
}

// --- Ordered queue shutdown edges -------------------------------------------

struct IntBefore {
  bool operator()(const int& a, const int& b) const { return a < b; }
};
using IntQueue = core::OrderedBatchQueue<int, IntBefore>;

TEST(OrderedQueueShutdownTest, CloseReleasesProducersBlockedInPush) {
  IntQueue queue(2);
  ASSERT_TRUE(queue.try_push(1));
  ASSERT_TRUE(queue.try_push(2));

  // Two producers park inside the blocking push on a full queue. Nothing
  // ever drains; only close() can release them — and it must, with a false
  // return, or ServingCluster teardown could hang forever.
  std::vector<std::thread> producers;
  std::vector<int> results(2, -1);
  for (int t = 0; t < 2; ++t)
    producers.emplace_back([&queue, &results, t] {
      results[static_cast<std::size_t>(t)] = queue.push(10 + t) ? 1 : 0;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(results[0], 0);
  EXPECT_EQ(results[1], 0);

  // The items admitted before the close still drain (kClosed), then the
  // queue reports empty-and-closed.
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(8, std::chrono::nanoseconds(0), batch),
            core::BatchFlush::kClosed);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.pop_batch(8, std::chrono::nanoseconds(0), batch),
            core::BatchFlush::kEmpty);
}  // destructor runs here, after close, with no thread inside — the contract

TEST(OrderedQueueShutdownTest, CloseWakesAConsumerParkedOnAnEmptyQueue) {
  IntQueue queue(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&queue, &woke] {
    std::vector<int> batch;
    // A 10-second coalescing deadline the close must preempt.
    const core::BatchFlush flush =
        queue.pop_batch(4, std::chrono::seconds(10), batch);
    EXPECT_EQ(flush, core::BatchFlush::kEmpty);
    EXPECT_TRUE(batch.empty());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto start = std::chrono::steady_clock::now();
  queue.close();
  consumer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(woke.load());
  EXPECT_LT(elapsed, 5.0);  // never waited out the deadline
}

// --- Router failover order ---------------------------------------------------

TEST(RouterFailoverTest, RendezvousOrderIsAStablePermutationOfAllShards) {
  const Router router(5);
  const std::vector<int> order = router.rendezvous_order(0xC0FFEEull, "CPU1");
  ASSERT_EQ(order.size(), 5u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int s = 0; s < 5; ++s) EXPECT_EQ(sorted[static_cast<std::size_t>(s)], s);

  // Stable across calls (failover placement must not wander) and key-
  // dependent (different keys spread over different permutations).
  EXPECT_EQ(router.rendezvous_order(0xC0FFEEull, "CPU1"), order);
  EXPECT_NE(router.rendezvous_order(0xBEEFull, "GPU1"), order);
}

// --- Chaos over a live cluster ----------------------------------------------

// Clusters share one primary registry so the whole suite pays for a single
// calibration fit (replicas adopt, never refit) — same as test_stream.
class FaultClusterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    primary_ = std::make_shared<serve::ModelRegistry>();
  }
  static void TearDownTestSuite() { primary_.reset(); }
  static std::shared_ptr<serve::ModelRegistry> primary_;

  static model::StudyConfig tiny_calibration() {
    model::StudyConfig cfg;
    cfg.archs = {"CPU1", "GPU1"};
    cfg.sims = {"cloverleaf"};
    cfg.tasks = {1, 2};
    cfg.samples_per_config = 3;
    cfg.min_image = 96;
    cfg.max_image = 192;
    cfg.min_n = 16;
    cfg.max_n = 28;
    cfg.vr_samples = 120;
    cfg.sim_steps = 1;
    cfg.seed = 123;
    return cfg;
  }

  // Cache OFF in every chaos config: a hit skips evaluation, which would
  // mask the injected eval faults this suite is about.
  static ClusterConfig chaos_config(int shards, std::uint64_t seed, double rate,
                                    std::uint32_t sites) {
    ClusterConfig cfg;
    cfg.service.calibration = tiny_calibration();
    cfg.shards = shards;
    cfg.cache_entries = 0;
    cfg.batch_size = 4;
    cfg.fault.seed = seed;
    cfg.fault.rate = rate;
    cfg.fault.sites = sites;
    cfg.watchdog_poll_us = 200;  // fast detection keeps crash tests quick
    return cfg;
  }

  // Distinct shapes per index so a response mixup can never pass a byte
  // compare (the test_stream idiom).
  static std::vector<AdvisorRequest> workload(int count) {
    std::vector<AdvisorRequest> requests;
    requests.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) {
      AdvisorRequest req;
      req.arch = (j % 2 == 0) ? "CPU1" : "GPU1";
      req.renderer = (j % 3 == 0) ? model::RendererKind::kRayTrace
                                  : (j % 3 == 1) ? model::RendererKind::kRasterize
                                                 : model::RendererKind::kVolume;
      req.n_per_task = 16 + (j % 4);
      req.image_edge = 96 + 8 * j;
      req.tasks = 1 + (j % 2);
      requests.push_back(req);
    }
    return requests;
  }

  // One serial session: submit everything, close, return the responses.
  static std::vector<AdvisorResponse> run_serial(ServingCluster& cluster,
                                                 const std::vector<AdvisorRequest>& reqs) {
    StreamSession session = cluster.open_stream();
    for (const AdvisorRequest& req : reqs) session.submit(req);
    return session.close();
  }
};

std::shared_ptr<serve::ModelRegistry> FaultClusterFixture::primary_;

TEST_F(FaultClusterFixture, EvalThrowAtFullRateDegradesEveryRequestAfterBoundedRetries) {
  // Rate 1.0 on eval-throw: every attempt of every request fails, so each
  // walks the full retry ladder — attempt 0 on its home shard, failover
  // re-drives at attempts 1 and 2, then an explicit degraded response. The
  // workers must survive it all (a supervised throw is not a crash).
  constexpr int kRequests = 10;
  ServingCluster cluster(
      chaos_config(2, 99, 1.0, site_mask(FaultSite::kShardEvalThrow)), primary_);
  const std::vector<AdvisorResponse> responses =
      run_serial(cluster, workload(kRequests));

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (const AdvisorResponse& r : responses) {
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.degraded());
    EXPECT_NE(r.error.find("degraded: retry budget exhausted after 3 attempts"),
              std::string::npos)
        << r.error;
  }

  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.degraded_queries, kRequests);
  // Deterministic accounting at rate 1.0: retry_limit (2) re-drives per
  // request, each a successful failover enqueue, and 3 injected throws.
  EXPECT_EQ(m.retries, 2 * kRequests);
  EXPECT_EQ(m.failovers, 2 * kRequests);
  EXPECT_EQ(m.faults_injected, 3 * kRequests);
  EXPECT_EQ(m.worker_restarts, 0);  // throws are absorbed, never fatal
  EXPECT_EQ(m.eval_exceptions, 0);  // injected, not a real evaluation throw
  ASSERT_EQ(m.shard_health.size(), 2u);

  // The new observability fields are on the wire.
  const std::string line = m.to_jsonl();
  for (const char* key : {"\"worker_restarts\":", "\"failovers\":", "\"retries\":",
                          "\"timeouts\":", "\"degraded_queries\":",
                          "\"eval_exceptions\":", "\"faults_injected\":",
                          "\"shard_health\":"})
    EXPECT_NE(line.find(key), std::string::npos) << key << " missing in " << line;
}

TEST_F(FaultClusterFixture, WorkerCrashIsRestartedAndTheHeldBatchIsRedriven) {
  // Rate 0.5 on worker-crash, single shard: roughly every other request
  // kills the worker mid-batch. The watchdog must reclaim the corpse,
  // restart the worker, and re-drive the held batch — with no sibling
  // shard to fail over to, the re-drive walks the fault ladder inline, so
  // a request whose attempts don't all fire is answered with its normal
  // pure bytes, and one whose three attempts all fire (hash odds ~12.5%)
  // degrades explicitly. Every slot gets exactly one of the two.
  constexpr int kRequests = 12;
  const std::vector<AdvisorRequest> requests = workload(kRequests);

  ServingCluster plain(chaos_config(1, 0, 1.0, 0), primary_);  // disarmed twin
  const std::vector<AdvisorResponse> expected = run_serial(plain, requests);

  ServingCluster cluster(
      chaos_config(1, 4242, 0.5, site_mask(FaultSite::kWorkerCrash)), primary_);
  const std::vector<AdvisorResponse> responses = run_serial(cluster, requests);

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  int survived = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].ok()) {
      ++survived;
      EXPECT_EQ(serve::to_jsonl(expected[i]), serve::to_jsonl(responses[i]))
          << "slot " << i;  // WHO evaluates never changes bytes
    } else {
      EXPECT_TRUE(responses[i].degraded()) << responses[i].error;
      EXPECT_NE(responses[i].error.find("retry budget exhausted"), std::string::npos)
          << responses[i].error;
    }
  }
  EXPECT_GT(survived, 0);  // at seed 4242 most requests recover
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GE(m.worker_restarts, 1);
  EXPECT_GE(m.retries, 1);
  EXPECT_GE(m.faults_injected, 1);
}

TEST_F(FaultClusterFixture, SameSeedReproducesTheSameDegradedBytesOnAFreshCluster) {
  // A mixed-fate schedule: rate 0.6 on eval-throw degrades a request only
  // when all three of its attempts fire (~22%), so both degraded and
  // answered responses occur. Two fresh clusters with the same seed must
  // agree byte-for-byte on every slot, and the answered slots must match a
  // fault-free run — the injector disturbs only whom it names.
  constexpr int kRequests = 24;
  const std::vector<AdvisorRequest> requests = workload(kRequests);
  const auto chaos = [&] {
    ServingCluster cluster(
        chaos_config(2, 31337, 0.6, site_mask(FaultSite::kShardEvalThrow)), primary_);
    return run_serial(cluster, requests);
  };
  const std::vector<AdvisorResponse> first = chaos();
  const std::vector<AdvisorResponse> second = chaos();

  ServingCluster plain(chaos_config(2, 0, 1.0, 0), primary_);
  const std::vector<AdvisorResponse> expected = run_serial(plain, requests);

  ASSERT_EQ(first.size(), static_cast<std::size_t>(kRequests));
  ASSERT_EQ(second.size(), first.size());
  int degraded = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(serve::to_jsonl(first[i]), serve::to_jsonl(second[i])) << "slot " << i;
    if (first[i].degraded()) {
      ++degraded;
    } else {
      EXPECT_EQ(serve::to_jsonl(expected[i]), serve::to_jsonl(first[i])) << "slot " << i;
    }
  }
  EXPECT_GT(degraded, 0);          // the schedule really injects...
  EXPECT_LT(degraded, kRequests);  // ...and really spares
}

TEST_F(FaultClusterFixture, DisarmedInjectorLeavesEveryByteUntouched) {
  // A seed with an empty site mask is disarmed: every fault branch is dead
  // and responses are byte-identical to a cluster with no fault config at
  // all — the subsystem's presence must cost nothing when off.
  constexpr int kRequests = 16;
  const std::vector<AdvisorRequest> requests = workload(kRequests);

  ClusterConfig vanilla;
  vanilla.service.calibration = tiny_calibration();
  vanilla.shards = 2;
  vanilla.cache_entries = 0;
  vanilla.batch_size = 4;
  ServingCluster baseline(std::move(vanilla), primary_);
  const std::vector<AdvisorResponse> expected = run_serial(baseline, requests);

  ServingCluster disarmed(chaos_config(2, 777, 1.0, 0), primary_);
  const std::vector<AdvisorResponse> responses = run_serial(disarmed, requests);

  ASSERT_EQ(responses.size(), expected.size());
  for (std::size_t i = 0; i < responses.size(); ++i)
    EXPECT_EQ(serve::to_jsonl(expected[i]), serve::to_jsonl(responses[i]))
        << "slot " << i;
  const ClusterMetrics m = disarmed.metrics();
  EXPECT_EQ(m.faults_injected, 0);
  EXPECT_EQ(m.degraded_queries, 0);
  EXPECT_EQ(m.worker_restarts, 0);
}

TEST_F(FaultClusterFixture, FitFailureServesExplicitDegradedResponsesInsteadOfCrashing) {
  // Rate 1.0 on fit-fail: the default corpus's calibration fit fails at
  // every replication attempt, so boot survives, the fit is never charged
  // to the registry, and every request earns an explicit degraded response
  // naming the broken corpus.
  const auto fresh = std::make_shared<serve::ModelRegistry>();
  ServingCluster cluster(
      chaos_config(2, 55, 1.0, site_mask(FaultSite::kCorpusFitFail)), fresh);
  const std::vector<AdvisorResponse> responses = run_serial(cluster, workload(3));

  ASSERT_EQ(responses.size(), 3u);
  for (const AdvisorResponse& r : responses) {
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.degraded());
    EXPECT_NE(
        r.error.find("corpus \"default\" unavailable: calibration fit failed"),
        std::string::npos)
        << r.error;
  }
  EXPECT_EQ(cluster.registry_fits(), 0);  // the fit never landed anywhere
  EXPECT_EQ(cluster.metrics().degraded_queries, 3);
}

TEST_F(FaultClusterFixture, QueueStallIsSurvivedWithNormalResponses) {
  // A stall delays a batch, it fails nothing: every response must come
  // back ok with its normal bytes, just later.
  ClusterConfig config =
      chaos_config(1, 808, 1.0, site_mask(FaultSite::kQueueStall));
  config.fault.stall_ms = 2;
  ServingCluster cluster(std::move(config), primary_);
  const std::vector<AdvisorResponse> responses = run_serial(cluster, workload(8));

  ASSERT_EQ(responses.size(), 8u);
  for (const AdvisorResponse& r : responses) EXPECT_TRUE(r.ok()) << r.error;
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GE(m.faults_injected, 1);
  EXPECT_EQ(m.degraded_queries, 0);
}

}  // namespace
}  // namespace isr::cluster
