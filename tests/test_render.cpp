// Renderer correctness: image-level invariants of the ray tracer,
// rasterizer, structured and unstructured volume renderers, plus the
// cross-renderer consistency the paper's comparisons rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "math/colormap.hpp"
#include "mesh/fields.hpp"
#include "mesh/scenes.hpp"
#include "mesh/tetrahedralize.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/uvr/unstructured.hpp"
#include "render/vr/volume.hpp"

namespace isr::render {
namespace {

struct Fixture {
  mesh::TriMesh sphere = mesh::make_icosphere({0.5f, 0.5f, 0.5f}, 0.4f, 4);
  Camera cam = Camera::framing(sphere.bounds(), 160, 160);
  ColorTable colors = ColorTable::cool_warm();
};

TEST(RayTracer, SphereCoverageMatchesAnalyticSilhouette) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  Image img;
  const RenderStats stats = rt.render(f.cam, f.colors, img);

  // Expected silhouette solid angle: the sphere of radius r at distance d
  // subtends a disc of angular radius asin(r/d).
  const float d = length(f.cam.position - Vec3f{0.5f, 0.5f, 0.5f});
  const float ang = std::asin(0.4f / d);
  const float fov = f.cam.fov_y_degrees * 3.14159265f / 180.0f;
  const float frac = (ang * ang) / (fov * fov / 4.0f) * 3.14159265f / 4.0f;
  const double expected = static_cast<double>(frac) * f.cam.pixel_count();
  EXPECT_NEAR(stats.active_pixels, expected, expected * 0.15);
  EXPECT_EQ(static_cast<std::size_t>(stats.active_pixels), img.active_pixel_count());
}

TEST(RayTracer, DepthIncreasesTowardSilhouette) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  Image img;
  rt.render(f.cam, f.colors, img);
  const float center_depth = img.depth(80, 80);
  ASSERT_NE(center_depth, kFarDepth);
  // A hit near the silhouette is farther than the center hit.
  float edge_depth = kFarDepth;
  for (int x = 80; x < 160; ++x) {
    if (img.depth(x, 80) == kFarDepth) break;
    edge_depth = img.depth(x, 80);
  }
  EXPECT_GT(edge_depth, center_depth);
}

TEST(RayTracer, WorkloadsProduceProgressivelyRicherImages) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  Image w1, w2, w3;
  RayTracerOptions o;
  o.workload = RayTracerOptions::Workload::kIntersect;
  rt.render(f.cam, f.colors, w1, o);
  o.workload = RayTracerOptions::Workload::kShaded;
  rt.render(f.cam, f.colors, w2, o);
  o.workload = RayTracerOptions::Workload::kFull;
  rt.render(f.cam, f.colors, w3, o);
  // Same coverage in all workloads; different shading.
  EXPECT_EQ(w1.active_pixel_count(), w2.active_pixel_count());
  EXPECT_GT(w2.rms_difference(w1), 0.01);
  EXPECT_GT(w3.rms_difference(w2), 0.001);  // AO + shadows change the image
}

TEST(RayTracer, CompactionDoesNotChangeTheImage) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  RayTracerOptions with, without;
  with.workload = without.workload = RayTracerOptions::Workload::kFull;
  with.anti_alias = without.anti_alias = false;  // keep deterministic
  with.stream_compaction = true;
  without.stream_compaction = false;
  Image a, b;
  rt.render(f.cam, f.colors, a, with);
  rt.render(f.cam, f.colors, b, without);
  EXPECT_LT(a.rms_difference(b), 1e-6);
}

TEST(RayTracer, PhaseTimingsArePopulated) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  Image img;
  const RenderStats stats = rt.render(f.cam, f.colors, img);
  EXPECT_GT(rt.bvh_build_stats().phase_seconds("bvh_build"), 0.0);
  EXPECT_GT(stats.phase_seconds("trace"), 0.0);
  EXPECT_GT(stats.phase_seconds("shade"), 0.0);
  EXPECT_DOUBLE_EQ(stats.phase_seconds("bvh_build"), 0.0);  // not re-built per frame
}

TEST(RayTracer, EmptyMeshRendersBackground) {
  mesh::TriMesh empty;
  dpp::Device dev = dpp::Device::serial();
  RayTracer rt(empty, dev);
  Camera cam;
  cam.width = cam.height = 32;
  Image img;
  RayTracerOptions o;
  o.background = {0.1f, 0.2f, 0.3f, 1.0f};
  const RenderStats stats = rt.render(cam, ColorTable::cool_warm(), img, o);
  EXPECT_EQ(stats.active_pixels, 0.0);
  EXPECT_FLOAT_EQ(img.pixel(5, 5).z, 0.3f);
}

TEST(RayTracer, SpecularReflectionExtensionChangesImage) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  // Two spheres so reflections have something to see.
  mesh::TriMesh two = f.sphere;
  two.append(mesh::make_icosphere({1.3f, 0.5f, 0.5f}, 0.3f, 3));
  RayTracer rt(two, dev);
  const Camera cam = Camera::framing(two.bounds(), 128, 128);
  RayTracerOptions base, refl;
  refl.max_specular_depth = 1;
  refl.specular_reflectance = 0.5f;
  Image a, b;
  rt.render(cam, f.colors, a, base);
  rt.render(cam, f.colors, b, refl);
  EXPECT_GT(a.rms_difference(b), 1e-4);
}

TEST(Rasterizer, AgreesWithRayTracerOnCoverageAndColor) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  RayTracer rt(f.sphere, dev);
  Rasterizer rast(f.sphere, dev);
  Image rt_img, rast_img;
  const RenderStats rt_stats = rt.render(f.cam, f.colors, rt_img);
  const RenderStats rast_stats = rast.render(f.cam, f.colors, rast_img);
  // Identical silhouettes (same camera math) and very similar shading.
  EXPECT_NEAR(rast_stats.active_pixels, rt_stats.active_pixels,
              rt_stats.active_pixels * 0.02);
  EXPECT_LT(rt_img.rms_difference(rast_img), 0.05);
}

TEST(Rasterizer, CullsOffscreenGeometry) {
  Fixture f;
  dpp::Device dev = dpp::Device::serial();
  // Add a second sphere far outside the view frustum.
  mesh::TriMesh scene = f.sphere;
  scene.append(mesh::make_icosphere({50, 50, 50}, 0.4f, 3));
  Rasterizer rast(scene, dev);
  Image img;
  const RenderStats stats = rast.render(f.cam, f.colors, img);
  EXPECT_EQ(stats.objects, static_cast<double>(scene.triangle_count()));
  // Exactly the first sphere's triangles survive the cull.
  EXPECT_EQ(stats.visible_objects, static_cast<double>(f.sphere.triangle_count()));
}

TEST(Rasterizer, DepthTestKeepsNearestSurface) {
  // Two overlapping quads at different depths; the closer one must win.
  mesh::TriMesh quads;
  quads.points = {{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},    // near, scalar 0
                  {0, 0, 2}, {1, 0, 2}, {1, 1, 2}, {0, 1, 2}};   // far, scalar 1
  quads.tris = {0, 1, 2, 0, 2, 3, 4, 5, 6, 4, 6, 7};
  quads.scalars = {0, 0, 0, 0, 1, 1, 1, 1};
  quads.compute_vertex_normals();
  Camera cam;
  cam.position = {0.5f, 0.5f, -2.0f};
  cam.look_at = {0.5f, 0.5f, 1.0f};
  cam.width = cam.height = 64;
  dpp::Device dev = dpp::Device::serial();
  Rasterizer rast(quads, dev);
  Image img;
  rast.render(cam, ColorTable::grayscale(), img);
  // Center pixel: near quad has scalar 0 (dark gray after shading).
  ASSERT_NE(img.depth(32, 32), kFarDepth);
  EXPECT_NEAR(img.depth(32, 32), 3.0f, 0.05f);
  EXPECT_LT(img.pixel(32, 32).x, 0.5f);
}

TEST(Rasterizer, StatsExposeModelVariables) {
  Fixture f;
  dpp::Device dev = dpp::Device::host();
  Rasterizer rast(f.sphere, dev);
  Image img;
  const RenderStats stats = rast.render(f.cam, f.colors, img);
  EXPECT_GT(stats.visible_objects, 0.0);
  EXPECT_GT(stats.pixels_per_tri, 0.0);
  EXPECT_GT(stats.phase_seconds("cull"), 0.0);
  EXPECT_GT(stats.phase_seconds("raster"), 0.0);
}

// --- Structured volume renderer -------------------------------------------

struct VolumeFixture {
  VolumeFixture() : grid(32, 32, 32, {0, 0, 0}, {1 / 32.f, 1 / 32.f, 1 / 32.f}) {
    mesh::fields::fill_radial(grid);
    cam = Camera::framing(grid.bounds(), 128, 128);
  }
  mesh::StructuredGrid grid;
  Camera cam;
  ColorTable colors = ColorTable::cool_warm();
};

TEST(VolumeRenderer, OpaqueTransferFunctionSaturatesAlpha) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  StructuredVolumeRenderer vr(f.grid, dev);
  const TransferFunction opaque(f.colors, 0.9f, 1.0f);
  Image img;
  vr.render(f.cam, opaque, img);
  // The ray through the volume center must saturate.
  EXPECT_GT(img.pixel(64, 64).w, 0.95f);
}

TEST(VolumeRenderer, TransparentTransferFunctionGivesNothing) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::serial();
  StructuredVolumeRenderer vr(f.grid, dev);
  const TransferFunction clear(f.colors, 0.0f, 0.0f);
  Image img;
  const RenderStats stats = vr.render(f.cam, clear, img);
  EXPECT_EQ(stats.active_pixels, 0.0);
}

TEST(VolumeRenderer, EarlyTerminationReducesSamplesNotImage) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  StructuredVolumeRenderer vr(f.grid, dev);
  const TransferFunction tf(f.colors, 0.3f, 0.9f);
  VolumeRenderOptions with, without;
  with.early_termination = true;
  without.early_termination = false;
  Image a, b;
  const RenderStats sa = vr.render(f.cam, tf, a, with);
  const RenderStats sb = vr.render(f.cam, tf, b, without);
  EXPECT_LT(sa.samples_per_ray, sb.samples_per_ray);
  EXPECT_LT(a.rms_difference(b), 0.03);  // saturated pixels look the same
}

TEST(VolumeRenderer, StatsMatchGeometry) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  StructuredVolumeRenderer vr(f.grid, dev);
  const TransferFunction tf(f.colors, 0.0f, 0.3f);
  Image img;
  VolumeRenderOptions opt;
  opt.samples = 200;
  opt.early_termination = false;  // measure the full geometric span
  const RenderStats stats = vr.render(f.cam, tf, img, opt);
  EXPECT_EQ(stats.objects, static_cast<double>(f.grid.cell_count()));
  // A ray through an N^3 grid can cross at most ~3N cell boundaries (the
  // paper maps CS to N as a good estimate; the diagonal bound is 3N).
  EXPECT_GT(stats.cells_spanned, 16.0);
  EXPECT_LE(stats.cells_spanned, 3.0 * 32 + 3);
  EXPECT_GT(stats.samples_per_ray, 10.0);
  EXPECT_LE(stats.samples_per_ray, 200.0);
}

// --- Unstructured volume renderer -----------------------------------------

TEST(UnstructuredVR, MatchesStructuredRendererOnSameField) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  const mesh::TetMesh tets = mesh::tetrahedralize(f.grid);
  const TransferFunction tf(f.colors, 0.0f, 0.35f);

  StructuredVolumeRenderer vr(f.grid, dev);
  Image structured;
  VolumeRenderOptions vopt;
  vopt.samples = 200;
  vopt.early_termination = false;
  vr.render(f.cam, tf, structured, vopt);

  UnstructuredVolumeRenderer uvr(tets, dev);
  Image unstructured;
  UnstructuredVROptions uopt;
  uopt.samples_in_depth = 200;
  uopt.early_termination = false;
  uvr.render(f.cam, tf, unstructured, uopt);

  // Same field, same camera: images agree to sampling tolerance.
  EXPECT_LT(structured.rms_difference(unstructured), 0.05);
}

TEST(UnstructuredVR, PassCountDoesNotChangeTheImage) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  const mesh::TetMesh tets = mesh::tetrahedralize(f.grid);
  const TransferFunction tf(f.colors, 0.0f, 0.35f);
  UnstructuredVolumeRenderer uvr(tets, dev);
  Image one, four;
  UnstructuredVROptions o1, o4;
  o1.samples_in_depth = o4.samples_in_depth = 120;
  o1.num_passes = 1;
  o4.num_passes = 4;
  o1.early_termination = o4.early_termination = false;
  uvr.render(f.cam, tf, one, o1);
  uvr.render(f.cam, tf, four, o4);
  // Samples exactly on shared tet faces can be claimed by either neighbor
  // and the winner depends on traversal order, so allow a small tolerance.
  EXPECT_LT(one.rms_difference(four), 0.01);
}

TEST(UnstructuredVR, AllFourPhasesReportTime) {
  VolumeFixture f;
  dpp::Device dev = dpp::Device::host();
  const mesh::TetMesh tets = mesh::tetrahedralize(f.grid);
  const TransferFunction tf(f.colors, 0.0f, 0.35f);
  UnstructuredVolumeRenderer uvr(tets, dev);
  Image img;
  UnstructuredVROptions opt;
  opt.num_passes = 2;
  const RenderStats stats = uvr.render(f.cam, tf, img, opt);
  for (const char* phase :
       {"initialization", "pass_selection", "screen_space", "sampling", "compositing"})
    EXPECT_GT(stats.phase_seconds(phase), 0.0) << phase;
}

TEST(Image, PpmAndPngWritersProduceFiles) {
  Image img(16, 16);
  img.clear({0.5f, 0.25f, 1.0f, 1.0f});
  EXPECT_TRUE(img.write_ppm("/tmp/isr_test.ppm"));
  EXPECT_TRUE(img.write_png("/tmp/isr_test.png"));
  FILE* f = fopen("/tmp/isr_test.png", "rb");
  ASSERT_NE(f, nullptr);
  unsigned char magic[8];
  ASSERT_EQ(fread(magic, 1, 8, f), 8u);
  EXPECT_EQ(magic[1], 'P');
  EXPECT_EQ(magic[2], 'N');
  fclose(f);
}

}  // namespace
}  // namespace isr::render
