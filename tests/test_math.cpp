// Unit tests for the math substrate: vectors, matrices, camera, AABB,
// Morton codes, RNG, color tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "math/aabb.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "math/mat4.hpp"
#include "math/morton.hpp"
#include "math/rng.hpp"
#include "math/vec.hpp"

namespace isr {
namespace {

TEST(Vec3, BasicOps) {
  const Vec3f a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3f{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3f{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vec3f{2, 4, 6}));
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3f a{1, 2, 3}, b{-2, 1, 4};
  const Vec3f c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
  EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
}

TEST(Vec3, NormalizeUnitLength) {
  const Vec3f v = normalize(Vec3f{3, 4, 12});
  EXPECT_NEAR(length(v), 1.0f, 1e-6f);
}

TEST(Vec3, NormalizeZeroIsSafe) {
  const Vec3f v = normalize(Vec3f{0, 0, 0});
  EXPECT_EQ(v, (Vec3f{0, 0, 0}));
}

TEST(Vec3, MinMaxLerp) {
  const Vec3f a{1, 5, 2}, b{3, 2, 8};
  EXPECT_EQ(vmin(a, b), (Vec3f{1, 2, 2}));
  EXPECT_EQ(vmax(a, b), (Vec3f{3, 5, 8}));
  EXPECT_EQ(lerp(a, b, 0.0f), a);
  EXPECT_EQ(lerp(a, b, 1.0f), b);
}

TEST(Mat4, IdentityTransform) {
  const Mat4 id = Mat4::identity();
  const Vec3f p{1, 2, 3};
  EXPECT_EQ(id.transform_point(p), p);
}

TEST(Mat4, MultiplyAssociatesWithTransform) {
  const Mat4 a = Mat4::look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const Mat4 b = Mat4::perspective(0.8f, 1.5f, 0.1f, 100.0f);
  const Vec3f p{0.3f, -0.2f, 1.0f};
  const Vec4f lhs = (b * a) * Vec4f(p, 1.0f);
  const Vec4f rhs = b * (a * Vec4f(p, 1.0f));
  EXPECT_NEAR(lhs.x, rhs.x, 1e-4f);
  EXPECT_NEAR(lhs.y, rhs.y, 1e-4f);
  EXPECT_NEAR(lhs.z, rhs.z, 1e-4f);
  EXPECT_NEAR(lhs.w, rhs.w, 1e-4f);
}

TEST(Mat4, InverseRoundTrip) {
  const Mat4 m = Mat4::look_at({1, 2, 3}, {0, 0, 0}, {0, 1, 0});
  const Mat4 r = m.inverse() * m;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(r.m[i][j], i == j ? 1.0f : 0.0f, 1e-4f) << i << "," << j;
}

TEST(Mat4, LookAtMovesEyeToOrigin) {
  const Vec3f eye{3, -2, 7};
  const Mat4 v = Mat4::look_at(eye, {0, 0, 0}, {0, 1, 0});
  const Vec3f at_origin = v.transform_point(eye);
  EXPECT_NEAR(length(at_origin), 0.0f, 1e-4f);
  // The look target lands on the -z axis.
  const Vec3f target = v.transform_point({0, 0, 0});
  EXPECT_NEAR(target.x, 0.0f, 1e-4f);
  EXPECT_NEAR(target.y, 0.0f, 1e-4f);
  EXPECT_LT(target.z, 0.0f);
}

TEST(Camera, CenterRayPointsAtLookAt) {
  Camera cam;
  cam.position = {1, 2, 10};
  cam.look_at = {0, 0, 0};
  cam.width = 101;
  cam.height = 101;
  const Vec3f dir = cam.ray_direction(50.0f, 50.0f);
  const Vec3f expect = normalize(cam.look_at - cam.position);
  EXPECT_NEAR(dir.x, expect.x, 1e-2f);
  EXPECT_NEAR(dir.y, expect.y, 1e-2f);
  EXPECT_NEAR(dir.z, expect.z, 1e-2f);
}

TEST(Camera, WorldToScreenCenterMapsToImageCenter) {
  Camera cam;
  cam.position = {0, 0, 5};
  cam.look_at = {0, 0, 0};
  cam.width = 200;
  cam.height = 100;
  const Vec4f s = cam.world_to_screen({0, 0, 0}, cam.view_projection());
  EXPECT_NEAR(s.x, 100.0f, 0.5f);
  EXPECT_NEAR(s.y, 50.0f, 0.5f);
  EXPECT_NEAR(s.z, 5.0f, 1e-3f);  // eye-space distance
}

TEST(Camera, ScreenAndRayAgree) {
  // A point projected to pixel (px, py) must lie on the ray through that
  // pixel: the consistency contract between the rasterizer and ray tracer.
  Camera cam;
  cam.position = {2, 1, 8};
  cam.look_at = {0.2f, -0.1f, 0};
  cam.width = 256;
  cam.height = 256;
  const Vec3f world{0.4f, 0.3f, 0.5f};
  const Vec4f s = cam.world_to_screen(world, cam.view_projection());
  ASSERT_GT(s.w, 0.0f);
  const Vec3f dir = cam.ray_direction(s.x - 0.5f, s.y - 0.5f);
  // The ray from the camera through that pixel should pass near the point.
  const Vec3f to_point = world - cam.position;
  const float t = dot(to_point, dir);
  const Vec3f closest = cam.position + dir * t;
  EXPECT_LT(length(closest - world), 0.05f);
}

TEST(Camera, FramingContainsBounds) {
  AABB box;
  box.expand({0, 0, 0});
  box.expand({1, 2, 3});
  const Camera cam = Camera::framing(box, 128, 128, 0.6f);
  const Mat4 vp = cam.view_projection();
  for (const Vec3f corner : {Vec3f{0, 0, 0}, Vec3f{1, 2, 3}, Vec3f{1, 0, 3}}) {
    const Vec4f s = cam.world_to_screen(corner, vp);
    EXPECT_GT(s.w, 0.0f);
    EXPECT_GE(s.x, 0.0f);
    EXPECT_LT(s.x, 128.0f);
    EXPECT_GE(s.y, 0.0f);
    EXPECT_LT(s.y, 128.0f);
  }
}

TEST(AABB, ExpandAndContains) {
  AABB box;
  EXPECT_FALSE(box.valid());
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0.5f, 0.5f, 0.5f}));
  EXPECT_FALSE(box.contains({1.5f, 0.5f, 0.5f}));
  EXPECT_FLOAT_EQ(box.surface_area(), 6.0f);
}

TEST(AABB, RayIntersection) {
  AABB box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  float t0, t1;
  const Vec3f dir{0, 0, 1};
  const Vec3f inv{1e30f, 1e30f, 1.0f};
  EXPECT_TRUE(box.intersect({0.5f, 0.5f, -1.0f}, inv, 0.0f, 100.0f, t0, t1));
  EXPECT_NEAR(t0, 1.0f, 1e-5f);
  EXPECT_NEAR(t1, 2.0f, 1e-5f);
  EXPECT_FALSE(box.intersect({2.0f, 0.5f, -1.0f}, inv, 0.0f, 100.0f, t0, t1));
  (void)dir;
}

TEST(AABB, RayFromInside) {
  AABB box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  float t0, t1;
  EXPECT_TRUE(box.intersect({0.5f, 0.5f, 0.5f}, {1e30f, 1e30f, 1.0f}, 0.0f, 100.0f, t0, t1));
  EXPECT_FLOAT_EQ(t0, 0.0f);
  EXPECT_NEAR(t1, 0.5f, 1e-5f);
}

TEST(Morton, Morton2dRoundTrip) {
  for (std::uint32_t x : {0u, 1u, 17u, 255u, 1000u, 65535u})
    for (std::uint32_t y : {0u, 3u, 128u, 999u, 65535u}) {
      std::uint32_t rx, ry;
      morton2d_decode(morton2d(x, y), rx, ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
}

TEST(Morton, Morton3dDistinctAndBounded) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z) {
        const std::uint32_t code = morton3d(x * 128, y * 128, z * 128);
        EXPECT_LT(code, 1u << 30);
        EXPECT_TRUE(seen.insert(code).second) << "collision";
      }
}

TEST(Morton, LocalityProperty) {
  // Adjacent cells along x differ less in code than distant cells (on
  // average) — the property that makes Morton order cache-friendly.
  double near_sum = 0, far_sum = 0;
  for (std::uint32_t x = 0; x < 100; ++x) {
    near_sum += std::abs(static_cast<double>(morton3d(x + 1, 5, 5)) - morton3d(x, 5, 5));
    far_sum += std::abs(static_cast<double>(morton3d(x + 500, 5, 5)) - morton3d(x, 5, 5));
  }
  EXPECT_LT(near_sum, far_sum);
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    const float fa = a.next_float();
    EXPECT_EQ(fa, b.next_float());
    EXPECT_GE(fa, 0.0f);
    EXPECT_LT(fa, 1.0f);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, HemisphereSamplesAreUnitAndOriented) {
  Rng rng(11);
  const Vec3f n = normalize(Vec3f{1, 2, -1});
  for (int i = 0; i < 500; ++i) {
    const Vec3f s = sample_hemisphere(n, rng.next_float(), rng.next_float());
    EXPECT_NEAR(length(s), 1.0f, 1e-4f);
    EXPECT_GE(dot(s, n), -1e-4f);
  }
}

TEST(ColorTable, EndpointsMatchControlPoints) {
  const ColorTable ct = ColorTable::grayscale();
  EXPECT_NEAR(ct.sample(0.0f).x, 0.0f, 0.01f);
  EXPECT_NEAR(ct.sample(1.0f).x, 1.0f, 0.01f);
  EXPECT_NEAR(ct.sample(0.5f).x, 0.5f, 0.01f);
}

TEST(ColorTable, ClampsOutOfRange) {
  const ColorTable ct = ColorTable::cool_warm();
  EXPECT_EQ(ct.sample(-1.0f).x, ct.sample(0.0f).x);
  EXPECT_EQ(ct.sample(2.0f).x, ct.sample(1.0f).x);
}

TEST(TransferFunction, AlphaRampIsMonotonic) {
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.5f);
  float prev = -1.0f;
  for (int i = 0; i <= 10; ++i) {
    const float a = tf.sample(static_cast<float>(i) / 10.0f).w;
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(TransferFunction, AlphaCorrection) {
  EXPECT_NEAR(TransferFunction::correct_alpha(0.5f, 1.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(TransferFunction::correct_alpha(0.5f, 2.0f), 0.75f, 1e-6f);
  // Shorter segments are more transparent.
  EXPECT_LT(TransferFunction::correct_alpha(0.5f, 0.5f), 0.5f);
}

}  // namespace
}  // namespace isr
