// The runtime-services layer: chunked-queue thread pool, parallel_for
// helpers, validated env parsing, and the counter-based splittable RNG
// seeding that makes parallel enumerations deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/arena.hpp"
#include "core/env.hpp"
#include "core/parallel_for.hpp"
#include "core/thread_pool.hpp"
#include "math/rng.hpp"

namespace isr {
namespace {

TEST(Arena, AllocationsAreAlignedDisjointAndWritable) {
  core::Arena arena(64);  // tiny first chunk to force spills
  std::vector<std::pair<unsigned char*, std::size_t>> blocks;
  for (const std::size_t bytes : {8u, 24u, 1u, 200u, 64u, 3u}) {
    auto* p = static_cast<unsigned char*>(arena.allocate(bytes, 8));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    // Write the whole block; ASan/valgrind runs would catch an overlap or
    // an out-of-chunk pointer.
    for (std::size_t i = 0; i < bytes; ++i) p[i] = static_cast<unsigned char>(i);
    blocks.emplace_back(p, bytes);
  }
  for (std::size_t a = 0; a < blocks.size(); ++a)
    for (std::size_t b = a + 1; b < blocks.size(); ++b) {
      const bool disjoint = blocks[a].first + blocks[a].second <= blocks[b].first ||
                            blocks[b].first + blocks[b].second <= blocks[a].first;
      EXPECT_TRUE(disjoint) << a << " vs " << b;
    }
  EXPECT_EQ(arena.used(), 8u + 24u + 1u + 200u + 64u + 3u);

  double* d = arena.alloc_array<double>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  // A zero-byte request is still a valid aligned pointer, not nullptr.
  EXPECT_NE(arena.allocate(0, 8), nullptr);
}

TEST(Arena, ResetRewindsWithoutReleasingAndStopsGrowing) {
  core::Arena arena(128);
  // Warmup: a workload bigger than the first chunk, so several chunks are
  // reserved with geometric growth.
  const auto workload = [&arena] {
    for (int i = 0; i < 40; ++i) arena.alloc_array<double>(32);
  };
  workload();
  const std::size_t warm_capacity = arena.capacity();
  const std::size_t warm_chunks = arena.chunk_count();
  const std::size_t warm_used = arena.used();
  EXPECT_GE(warm_chunks, 2u);
  EXPECT_GE(warm_capacity, warm_used);

  // Steady state: reset + same-shaped workload, many times. Capacity and
  // chunk count are flat (no heap traffic), and used() restarts from zero
  // each round rather than accumulating.
  for (int round = 0; round < 32; ++round) {
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
    workload();
    EXPECT_EQ(arena.capacity(), warm_capacity) << "round " << round;
    EXPECT_EQ(arena.chunk_count(), warm_chunks) << "round " << round;
    EXPECT_EQ(arena.used(), warm_used) << "round " << round;
  }

  // Reset preserves the chunks themselves: the first post-reset pointer is
  // the same address as the first warmup pointer (reuse, not realloc).
  arena.reset();
  void* first_again = arena.allocate(16, 8);
  arena.reset();
  EXPECT_EQ(arena.allocate(16, 8), first_again);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  core::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  core::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OneThreadPoolRunsSeriallyInCallerOrder) {
  core::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<std::size_t> order;
  core::parallel_for(pool, 64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, GrainCoversTheWholeRange) {
  core::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(997);  // prime: not a multiple of grain
  core::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; }, 16);
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 997);
}

TEST(ThreadPool, AutoChunkedVariantCoversTheWholeRange) {
  core::ThreadPool pool(4);
  std::atomic<long> sum{0};
  core::parallel_for_chunked(pool, 10000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  core::ThreadPool pool(4);
  std::atomic<int> count{0};
  core::parallel_for(pool, 8, [&](std::size_t) {
    core::parallel_for(pool, 32, [&](std::size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 8 * 32);
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  core::ThreadPool pool(4);
  const auto boom = [](std::size_t i) {
    if (i == 37) throw std::runtime_error("boom");
  };
  EXPECT_THROW(core::parallel_for(pool, 100, boom), std::runtime_error);
  // The pool survives a failed loop and stays usable.
  std::atomic<int> count{0};
  core::parallel_for(pool, 100, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountHonorsIsrThreads) {
  setenv("ISR_THREADS", "3", 1);
  EXPECT_EQ(core::default_thread_count(), 3);
  setenv("ISR_THREADS", "not-a-number", 1);
  EXPECT_GE(core::default_thread_count(), 1);  // warns, falls back to hardware
  unsetenv("ISR_THREADS");
  EXPECT_GE(core::default_thread_count(), 1);
}

TEST(Env, DoubleParsesValidatesAndWarns) {
  setenv("ISR_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 2.5);
  setenv("ISR_TEST_ENV_D", "  0.75  ", 1);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 0.75);
  setenv("ISR_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 1.0);
  setenv("ISR_TEST_ENV_D", "2.5x", 1);  // atof would happily return 2.5
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 1.0);
  setenv("ISR_TEST_ENV_D", "-3", 1);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0, /*require_positive=*/false), -3.0);
  setenv("ISR_TEST_ENV_D", "0", 1);
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 1.0);
  unsetenv("ISR_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(core::env_double("ISR_TEST_ENV_D", 1.0), 1.0);
}

TEST(Env, LongParsesValidates) {
  setenv("ISR_TEST_ENV_L", "12", 1);
  EXPECT_EQ(core::env_long("ISR_TEST_ENV_L", 7), 12);
  setenv("ISR_TEST_ENV_L", "12.5", 1);  // trailing junk for an integer
  EXPECT_EQ(core::env_long("ISR_TEST_ENV_L", 7), 7);
  setenv("ISR_TEST_ENV_L", "-4", 1);
  EXPECT_EQ(core::env_long("ISR_TEST_ENV_L", 7), 7);
  unsetenv("ISR_TEST_ENV_L");
  EXPECT_EQ(core::env_long("ISR_TEST_ENV_L", 7), 7);
}

TEST(Parse, DoubleReportsWhyAndLeavesOutputUntouched) {
  double v = 42.0;
  EXPECT_EQ(core::parse_double("2.5", v), core::ParseStatus::kOk);
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_EQ(core::parse_double("  1e-3 ", v), core::ParseStatus::kOk);
  EXPECT_DOUBLE_EQ(v, 1e-3);
  v = 42.0;
  EXPECT_EQ(core::parse_double("garbage", v), core::ParseStatus::kNotANumber);
  EXPECT_EQ(core::parse_double("2.5x", v), core::ParseStatus::kNotANumber);
  EXPECT_EQ(core::parse_double("", v), core::ParseStatus::kNotANumber);
  EXPECT_EQ(core::parse_double("inf", v), core::ParseStatus::kNotFinite);
  EXPECT_EQ(core::parse_double("-3", v, /*require_positive=*/true),
            core::ParseStatus::kNotPositive);
  EXPECT_DOUBLE_EQ(v, 42.0);  // rejected parses never write
  EXPECT_EQ(core::parse_double("-3", v), core::ParseStatus::kOk);
  EXPECT_DOUBLE_EQ(v, -3.0);
  EXPECT_STREQ(core::parse_status_message(core::ParseStatus::kNotANumber), "not a number");
}

TEST(Parse, LongReportsWhyAndLeavesOutputUntouched) {
  long v = 42;
  EXPECT_EQ(core::parse_long("12", v), core::ParseStatus::kOk);
  EXPECT_EQ(v, 12);
  v = 42;
  EXPECT_EQ(core::parse_long("12.5", v), core::ParseStatus::kNotANumber);
  EXPECT_EQ(core::parse_long("99999999999999999999999", v), core::ParseStatus::kOutOfRange);
  EXPECT_EQ(core::parse_long("0", v, /*require_positive=*/true),
            core::ParseStatus::kNotPositive);
  EXPECT_EQ(v, 42);
  EXPECT_EQ(core::parse_long("-4", v), core::ParseStatus::kOk);
  EXPECT_EQ(v, -4);
}

TEST(HashSeed, IsDeterministicAndKeySensitive) {
  EXPECT_EQ(hash_seed(77, "cloverleaf", 4, 2), hash_seed(77, "cloverleaf", 4, 2));
  EXPECT_NE(hash_seed(77, "cloverleaf", 4, 2), hash_seed(77, "kripke", 4, 2));
  EXPECT_NE(hash_seed(77, "cloverleaf", 4, 2), hash_seed(77, "cloverleaf", 2, 4));
  EXPECT_NE(hash_seed(77, 1, 2), hash_seed(77, 2, 1));  // order matters
  EXPECT_NE(hash_seed(77, 1, 2), hash_seed(78, 1, 2));  // seed matters
}

TEST(HashSeed, SeparatesAdjacentCounters) {
  // Seeds for neighboring grid points must give unrelated Rng streams.
  const std::uint64_t a = hash_seed(77, "lulesh", 8, 0);
  const std::uint64_t b = hash_seed(77, "lulesh", 8, 1);
  Rng ra(a), rb(b);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (ra.next_u32() == rb.next_u32()) ++equal;
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace isr
