// Tests for the mesh substrate: grids, external faces, tetrahedralization,
// marching-tetrahedra isosurfaces, procedural fields and scenes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mesh/external_faces.hpp"
#include "mesh/fields.hpp"
#include "mesh/isosurface.hpp"
#include "mesh/scenes.hpp"
#include "mesh/structured.hpp"
#include "mesh/tetrahedralize.hpp"
#include "mesh/trimesh.hpp"

namespace isr::mesh {
namespace {

StructuredGrid unit_grid(int n) {
  return StructuredGrid(n, n, n, {0, 0, 0},
                        {1.0f / static_cast<float>(n), 1.0f / static_cast<float>(n),
                         1.0f / static_cast<float>(n)});
}

TEST(StructuredGrid, CountsAndBounds) {
  const StructuredGrid g = unit_grid(4);
  EXPECT_EQ(g.cell_count(), 64u);
  EXPECT_EQ(g.point_count(), 125u);
  const AABB b = g.bounds();
  EXPECT_NEAR(b.lo.x, 0.0f, 1e-6f);
  EXPECT_NEAR(b.hi.z, 1.0f, 1e-6f);
}

TEST(StructuredGrid, TrilinearSamplingIsExactForLinearFields) {
  StructuredGrid g = unit_grid(5);
  // f(x,y,z) = 2x + 3y - z: trilinear interpolation must reproduce exactly.
  for (int k = 0; k <= 5; ++k)
    for (int j = 0; j <= 5; ++j)
      for (int i = 0; i <= 5; ++i) {
        const Vec3f p = g.point(i, j, k);
        g.scalars()[g.point_index(i, j, k)] = 2 * p.x + 3 * p.y - p.z;
      }
  float v;
  ASSERT_TRUE(g.sample({0.33f, 0.71f, 0.52f}, v));
  EXPECT_NEAR(v, 2 * 0.33f + 3 * 0.71f - 0.52f, 1e-5f);
  EXPECT_FALSE(g.sample({1.5f, 0.5f, 0.5f}, v));
}

TEST(StructuredGrid, NormalizeScalars) {
  StructuredGrid g = unit_grid(2);
  fields::fill_radial(g);
  float lo, hi;
  g.scalar_range(lo, hi);
  EXPECT_NEAR(lo, 0.0f, 1e-6f);
  EXPECT_NEAR(hi, 1.0f, 1e-6f);
}

TEST(ExternalFaces, StructuredCountIs12NSquared) {
  for (int n : {1, 3, 8}) {
    const TriMesh faces = external_faces(unit_grid(n));
    EXPECT_EQ(faces.triangle_count(), static_cast<std::size_t>(12 * n * n)) << "n=" << n;
  }
}

TEST(ExternalFaces, StructuredSurfaceIsClosed) {
  // Every edge of a closed 2-manifold is shared by exactly two triangles.
  const TriMesh faces = external_faces(unit_grid(4));
  std::map<std::pair<int, int>, int> edge_count;
  for (std::size_t t = 0; t < faces.triangle_count(); ++t)
    for (int e = 0; e < 3; ++e) {
      int a = faces.tris[t * 3 + static_cast<std::size_t>(e)];
      int b = faces.tris[t * 3 + static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  for (const auto& [edge, count] : edge_count) EXPECT_EQ(count, 2);
}

TEST(ExternalFaces, NormalsPointOutward) {
  const StructuredGrid g = unit_grid(3);
  const TriMesh faces = external_faces(g);
  const Vec3f center = g.bounds().center();
  int outward = 0, total = 0;
  for (std::size_t t = 0; t < faces.triangle_count(); ++t) {
    const Vec3f a = faces.vertex(t, 0), b = faces.vertex(t, 1), c = faces.vertex(t, 2);
    const Vec3f n = cross(b - a, c - a);
    const Vec3f to_face = (a + b + c) / 3.0f - center;
    if (dot(n, to_face) > 0) ++outward;
    ++total;
  }
  EXPECT_EQ(outward, total);
}

TEST(ExternalFaces, HexMeshSingleCell) {
  StructuredGrid g = unit_grid(1);
  const TetMesh tets = tetrahedralize(g);
  (void)tets;
  HexMesh hex;
  hex.points = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
  hex.conn = {0, 1, 2, 3, 4, 5, 6, 7};
  hex.scalars.assign(8, 1.0f);
  const TriMesh faces = external_faces(hex);
  EXPECT_EQ(faces.triangle_count(), 12u);
}

TEST(ExternalFaces, InteriorFacesAreRemoved) {
  // Two stacked hexes: 2*12 - 2*2 = 20 external triangles.
  HexMesh hex;
  for (int k = 0; k <= 2; ++k)
    for (int j = 0; j <= 1; ++j)
      for (int i = 0; i <= 1; ++i)
        hex.points.push_back({static_cast<float>(i), static_cast<float>(j),
                              static_cast<float>(k)});
  auto id = [](int i, int j, int k) { return i + 2 * (j + 2 * k); };
  for (int k = 0; k < 2; ++k) {
    const int c[8] = {id(0, 0, k), id(1, 0, k), id(1, 1, k), id(0, 1, k),
                      id(0, 0, k + 1), id(1, 0, k + 1), id(1, 1, k + 1), id(0, 1, k + 1)};
    hex.conn.insert(hex.conn.end(), c, c + 8);
  }
  hex.scalars.assign(hex.points.size(), 0.0f);
  const TriMesh faces = external_faces(hex);
  EXPECT_EQ(faces.triangle_count(), 20u);
}

TEST(Tetrahedralize, SixTetsPerCellAndVolumePreserved) {
  const StructuredGrid g = unit_grid(3);
  const TetMesh tets = tetrahedralize(g);
  EXPECT_EQ(tets.cell_count(), g.cell_count() * 6);
  // Sum of tet volumes == box volume (the 6-tet split fills each hex).
  double vol = 0.0;
  for (std::size_t t = 0; t < tets.cell_count(); ++t) {
    const Vec3f a = tets.vertex(t, 0);
    const Vec3f e1 = tets.vertex(t, 1) - a;
    const Vec3f e2 = tets.vertex(t, 2) - a;
    const Vec3f e3 = tets.vertex(t, 3) - a;
    vol += std::abs(dot(e1, cross(e2, e3))) / 6.0;
  }
  EXPECT_NEAR(vol, 1.0, 1e-4);
}

TEST(Tetrahedralize, NoDegenerateTets) {
  const TetMesh tets = tetrahedralize(unit_grid(2));
  for (std::size_t t = 0; t < tets.cell_count(); ++t) {
    const Vec3f a = tets.vertex(t, 0);
    const float vol = std::abs(dot(tets.vertex(t, 1) - a,
                                   cross(tets.vertex(t, 2) - a, tets.vertex(t, 3) - a)));
    EXPECT_GT(vol, 1e-8f);
  }
}

TEST(Isosurface, SphereFieldGivesSphericalSurface) {
  StructuredGrid g = unit_grid(24);
  // fill_radial produces 1 - 2*|p - center| re-normalized to [0, 1] over the
  // grid (min is at a cube corner, distance sqrt(3)/2): the 0.5 isosurface
  // sits at raw value (1 - sqrt(3))/2 + 0.5, i.e. radius (1+sqrt(3))/2/2 - 0.25
  // = sqrt(3)/4 - ... solved: r = (1 - (0.5*(1 - sqrt(3)) + 0.5)) / 2.
  fields::fill_radial(g);
  const float raw_lo = 1.0f - std::sqrt(3.0f);  // corner value before normalize
  const float raw_at_iso = raw_lo + 0.5f * (1.0f - raw_lo);
  const float radius = (1.0f - raw_at_iso) / 2.0f;
  const TriMesh surf = isosurface(g, 0.5f);
  ASSERT_GT(surf.triangle_count(), 100u);
  const Vec3f center{0.5f, 0.5f, 0.5f};
  for (const Vec3f& p : surf.points) EXPECT_NEAR(length(p - center), radius, 0.03f);
}

TEST(Isosurface, WatertightEdges) {
  StructuredGrid g = unit_grid(10);
  fields::fill_radial(g);
  const TriMesh surf = isosurface(g, 0.5f);
  std::map<std::pair<int, int>, int> edge_count;
  for (std::size_t t = 0; t < surf.triangle_count(); ++t)
    for (int e = 0; e < 3; ++e) {
      int a = surf.tris[t * 3 + static_cast<std::size_t>(e)];
      int b = surf.tris[t * 3 + static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  // A closed isosurface of a sphere entirely inside the domain: every edge
  // is shared by exactly two triangles.
  for (const auto& [edge, count] : edge_count) EXPECT_EQ(count, 2);
}

TEST(Isosurface, OutOfRangeIsoGivesEmptySurface) {
  StructuredGrid g = unit_grid(8);
  fields::fill_radial(g);
  EXPECT_EQ(isosurface(g, 2.0f).triangle_count(), 0u);
  EXPECT_EQ(isosurface(g, -1.0f).triangle_count(), 0u);
}

TEST(Isosurface, SecondaryColorFieldIsInterpolated) {
  StructuredGrid g = unit_grid(8);
  fields::fill_radial(g);
  std::vector<float> colors(g.point_count(), 0.75f);
  const TriMesh surf = isosurface(g, 0.5f, &colors);
  for (const float s : surf.scalars) EXPECT_FLOAT_EQ(s, 0.75f);
}

TEST(TriMesh, VertexNormalsAreUnit) {
  const TriMesh sphere = make_icosphere({0, 0, 0}, 1.0f, 2);
  ASSERT_EQ(sphere.normals.size(), sphere.points.size());
  for (const Vec3f& n : sphere.normals) EXPECT_NEAR(length(n), 1.0f, 1e-4f);
}

TEST(TriMesh, SphereNormalsPointRadially) {
  const TriMesh sphere = make_icosphere({0, 0, 0}, 1.0f, 3);
  for (std::size_t i = 0; i < sphere.points.size(); ++i)
    EXPECT_GT(dot(sphere.normals[i], normalize(sphere.points[i])), 0.95f);
}

TEST(TriMesh, AppendRebasesIndices) {
  TriMesh a = make_box({{0, 0, 0}, {1, 1, 1}});
  const std::size_t tris_a = a.triangle_count();
  TriMesh b = make_box({{2, 0, 0}, {3, 1, 1}});
  a.append(b);
  EXPECT_EQ(a.triangle_count(), tris_a + b.triangle_count());
  for (const int idx : a.tris) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, static_cast<int>(a.points.size()));
  }
}

TEST(Fields, AllGeneratorsProduceNormalizedFields) {
  for (int which = 0; which < 4; ++which) {
    StructuredGrid g = unit_grid(12);
    switch (which) {
      case 0: fields::fill_interface(g); break;
      case 1: fields::fill_lattice(g); break;
      case 2: fields::fill_turbulence(g); break;
      case 3: fields::fill_blobs(g); break;
    }
    float lo, hi;
    g.scalar_range(lo, hi);
    EXPECT_NEAR(lo, 0.0f, 1e-5f) << which;
    EXPECT_NEAR(hi, 1.0f, 1e-5f) << which;
  }
}

TEST(Scenes, AllChapter2ScenesBuild) {
  for (const SceneInfo& info : chapter2_scenes()) {
    const TriMesh scene = make_scene(info.name, 0.15f);
    EXPECT_GT(scene.triangle_count(), 10u) << info.name;
    EXPECT_EQ(scene.scalars.size(), scene.points.size()) << info.name;
    EXPECT_TRUE(scene.bounds().valid()) << info.name;
  }
  EXPECT_THROW(make_scene("not-a-scene"), std::invalid_argument);
}

TEST(Scenes, ScaleControlsTriangleCount) {
  const std::size_t small = make_scene("RM 350K", 0.12f).triangle_count();
  const std::size_t large = make_scene("RM 350K", 0.3f).triangle_count();
  EXPECT_GT(large, small * 2);
}

TEST(Scenes, SphereFlakeGrowsWithDepth) {
  const std::size_t d1 = make_sphere_flake({0, 0, 0}, 1.0f, 1).triangle_count();
  const std::size_t d2 = make_sphere_flake({0, 0, 0}, 1.0f, 2).triangle_count();
  EXPECT_EQ(d2 > d1, true);
  EXPECT_EQ(d1 % make_icosphere({0, 0, 0}, 1.0f, 2).triangle_count(), 0u);
}

}  // namespace
}  // namespace isr::mesh
