// Integration test of the full SC16 methodology on a miniature corpus: run
// the study driver end to end, fit the models, and check that measure ->
// fit -> cross-validate -> predict holds together.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "model/study.hpp"

namespace isr::model {
namespace {

StudyConfig tiny_config() {
  StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

class StudyEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { obs_ = new std::vector<Observation>(run_study(tiny_config())); }
  static void TearDownTestSuite() {
    delete obs_;
    obs_ = nullptr;
  }
  static std::vector<Observation>* obs_;
};

std::vector<Observation>* StudyEndToEnd::obs_ = nullptr;

TEST_F(StudyEndToEnd, ProducesTheFullCrossProduct) {
  // 1 sim x 2 tasks x 3 samples x 2 archs x 3 renderers = 36 observations.
  EXPECT_EQ(obs_->size(), 36u);
  for (const Observation& o : *obs_) {
    EXPECT_GT(o.sample.render_seconds, 0.0) << o.arch;
    EXPECT_GT(o.sample.inputs.objects, 0.0);
    EXPECT_GT(o.sample.inputs.active_pixels, 0.0);
    EXPECT_GE(o.composite_seconds, 0.0);
    EXPECT_NEAR(o.total_seconds, o.sample.total_seconds() + o.composite_seconds, 1e-12);
  }
}

TEST_F(StudyEndToEnd, RayTracingSamplesIncludeBuildTimes) {
  const auto rt = samples_for(*obs_, "GPU1", RendererKind::kRayTrace);
  ASSERT_FALSE(rt.empty());
  for (const RenderSample& s : rt) EXPECT_GT(s.build_seconds, 0.0);
}

TEST_F(StudyEndToEnd, VolumeSamplesCarryVolumeVariables) {
  const auto vr = samples_for(*obs_, "CPU1", RendererKind::kVolume);
  ASSERT_FALSE(vr.empty());
  for (const RenderSample& s : vr) {
    EXPECT_GT(s.inputs.samples_per_ray, 0.0);
    EXPECT_GT(s.inputs.cells_spanned, 0.0);
  }
}

TEST_F(StudyEndToEnd, ModelsFitTheCorpus) {
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind :
         {RendererKind::kRayTrace, RendererKind::kRasterize, RendererKind::kVolume}) {
      const auto samples = samples_for(*obs_, arch, kind);
      ASSERT_GE(samples.size(), 6u);
      const PerfModel model = PerfModel::fit(kind, samples);
      ASSERT_TRUE(model.ok()) << arch << " " << renderer_name(kind);
      // A tiny corpus still must explain most of the variance: the cost
      // model is (by construction) near-linear in the model features.
      EXPECT_GT(model.r_squared(), 0.5) << arch << " " << renderer_name(kind);
      // In-corpus predictions land within a factor of ~2.
      for (const RenderSample& s : samples) {
        const double pred = model.predict_render(s.inputs);
        EXPECT_GT(pred, s.render_seconds * 0.3);
        EXPECT_LT(pred, s.render_seconds * 3.0);
      }
    }
  }
}

TEST_F(StudyEndToEnd, CompositingSamplesFitEquation55) {
  // The tiny corpus (tasks <= 2, small images) barely spans the compositing
  // model's inputs, so only the fit's structural properties are asserted;
  // the compositing bench fits on a real 1..64-rank corpus.
  const auto comp = composite_samples(*obs_);
  ASSERT_GE(comp.size(), 30u);
  const CompositeModel model = CompositeModel::fit(comp);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model.r_squared(), 0.0);
  EXPECT_GT(model.predict(1e5, 1e6), 0.0);
}

TEST_F(StudyEndToEnd, GpuIsFasterThanCpuProfileOnSameWork) {
  // Sanity of the architecture substitution: the K40-like profile should
  // beat the CPU profile on identical rendering work (as in Table 1).
  double cpu_total = 0.0, gpu_total = 0.0;
  for (const Observation& o : *obs_) {
    if (o.renderer != RendererKind::kRayTrace) continue;
    if (o.arch == "CPU1") cpu_total += o.sample.render_seconds;
    if (o.arch == "GPU1") gpu_total += o.sample.render_seconds;
  }
  EXPECT_GT(cpu_total, gpu_total * 1.5);
}

TEST(StudyHelpers, ScaleFromEnvDefaultsToOne) {
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
}

TEST(StudyHelpers, ScaleFromEnvValidatesInput) {
  setenv("ISR_STUDY_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 2.5);
  // atof-style parsing silently returned 0 for these; they must now warn
  // and fall back to the default instead.
  setenv("ISR_STUDY_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
  setenv("ISR_STUDY_SCALE", "2.5abc", 1);
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
  setenv("ISR_STUDY_SCALE", "-2", 1);
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
  setenv("ISR_STUDY_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
  unsetenv("ISR_STUDY_SCALE");
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
}

// A config small enough to run three times in one test, with tasks=4 so the
// per-rank pool fan-out path executes, and lulesh so the volume-renderer
// skip and cross-rank normalization are exercised.
StudyConfig determinism_config() {
  StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf", "lulesh"};
  cfg.tasks = {1, 4};
  cfg.samples_per_config = 2;
  cfg.min_image = 64;
  cfg.max_image = 128;
  cfg.min_n = 12;
  cfg.max_n = 20;
  cfg.vr_samples = 80;
  cfg.sim_steps = 1;
  cfg.seed = 2016;
  return cfg;
}

void expect_identical(const std::vector<Observation>& a, const std::vector<Observation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact equality on every field, not approximate: the corpus must be a
    // pure function of the config, independent of thread count.
    EXPECT_TRUE(observations_identical(a[i], b[i]))
        << "observation " << i << " (" << a[i].sim << " " << a[i].arch << " "
        << renderer_name(a[i].renderer) << " tasks=" << a[i].tasks
        << ") diverges: render " << a[i].sample.render_seconds << " vs "
        << b[i].sample.render_seconds << ", composite " << a[i].composite_seconds << " vs "
        << b[i].composite_seconds;
  }
}

TEST(StudyDeterminism, CorpusIsBitIdenticalAtAnyThreadCount) {
  StudyConfig cfg = determinism_config();
  cfg.threads = 1;
  const std::vector<Observation> serial = run_study(cfg);
  // 2 sims x 2 tasks x 2 samples x 2 archs x 3 renderers, minus the
  // volume renderer on lulesh's unstructured surface: 48 - 8 = 40.
  EXPECT_EQ(serial.size(), 40u);
  cfg.threads = 4;
  expect_identical(serial, run_study(cfg));
  cfg.threads = 3;
  expect_identical(serial, run_study(cfg));
}

TEST(StudyDeterminism, VerboseOutputKeepsGridOrderAtAnyThreadCount) {
  StudyConfig cfg = determinism_config();
  cfg.sims = {"cloverleaf"};
  cfg.samples_per_config = 1;

  cfg.threads = 1;
  testing::internal::CaptureStdout();
  const std::vector<Observation> serial = run_study(cfg, /*verbose=*/true);
  const std::string serial_out = testing::internal::GetCapturedStdout();

  cfg.threads = 4;
  testing::internal::CaptureStdout();
  run_study(cfg, /*verbose=*/true);
  const std::string parallel_out = testing::internal::GetCapturedStdout();

  EXPECT_EQ(serial_out, parallel_out);

  // One line per observation, in grid order: line i describes obs[i].
  std::istringstream in(serial_out);
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(i, serial.size());
    EXPECT_NE(line.find("study " + serial[i].sim), std::string::npos) << line;
    EXPECT_NE(line.find(serial[i].arch), std::string::npos) << line;
    EXPECT_NE(line.find(renderer_name(serial[i].renderer)), std::string::npos) << line;
    ++i;
  }
  EXPECT_EQ(i, serial.size());
}

}  // namespace
}  // namespace isr::model
