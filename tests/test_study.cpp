// Integration test of the full SC16 methodology on a miniature corpus: run
// the study driver end to end, fit the models, and check that measure ->
// fit -> cross-validate -> predict holds together.
#include <gtest/gtest.h>

#include "model/study.hpp"

namespace isr::model {
namespace {

StudyConfig tiny_config() {
  StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

class StudyEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { obs_ = new std::vector<Observation>(run_study(tiny_config())); }
  static void TearDownTestSuite() {
    delete obs_;
    obs_ = nullptr;
  }
  static std::vector<Observation>* obs_;
};

std::vector<Observation>* StudyEndToEnd::obs_ = nullptr;

TEST_F(StudyEndToEnd, ProducesTheFullCrossProduct) {
  // 1 sim x 2 tasks x 3 samples x 2 archs x 3 renderers = 36 observations.
  EXPECT_EQ(obs_->size(), 36u);
  for (const Observation& o : *obs_) {
    EXPECT_GT(o.sample.render_seconds, 0.0) << o.arch;
    EXPECT_GT(o.sample.inputs.objects, 0.0);
    EXPECT_GT(o.sample.inputs.active_pixels, 0.0);
    EXPECT_GE(o.composite_seconds, 0.0);
    EXPECT_NEAR(o.total_seconds, o.sample.total_seconds() + o.composite_seconds, 1e-12);
  }
}

TEST_F(StudyEndToEnd, RayTracingSamplesIncludeBuildTimes) {
  const auto rt = samples_for(*obs_, "GPU1", RendererKind::kRayTrace);
  ASSERT_FALSE(rt.empty());
  for (const RenderSample& s : rt) EXPECT_GT(s.build_seconds, 0.0);
}

TEST_F(StudyEndToEnd, VolumeSamplesCarryVolumeVariables) {
  const auto vr = samples_for(*obs_, "CPU1", RendererKind::kVolume);
  ASSERT_FALSE(vr.empty());
  for (const RenderSample& s : vr) {
    EXPECT_GT(s.inputs.samples_per_ray, 0.0);
    EXPECT_GT(s.inputs.cells_spanned, 0.0);
  }
}

TEST_F(StudyEndToEnd, ModelsFitTheCorpus) {
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind :
         {RendererKind::kRayTrace, RendererKind::kRasterize, RendererKind::kVolume}) {
      const auto samples = samples_for(*obs_, arch, kind);
      ASSERT_GE(samples.size(), 6u);
      const PerfModel model = PerfModel::fit(kind, samples);
      ASSERT_TRUE(model.ok()) << arch << " " << renderer_name(kind);
      // A tiny corpus still must explain most of the variance: the cost
      // model is (by construction) near-linear in the model features.
      EXPECT_GT(model.r_squared(), 0.5) << arch << " " << renderer_name(kind);
      // In-corpus predictions land within a factor of ~2.
      for (const RenderSample& s : samples) {
        const double pred = model.predict_render(s.inputs);
        EXPECT_GT(pred, s.render_seconds * 0.3);
        EXPECT_LT(pred, s.render_seconds * 3.0);
      }
    }
  }
}

TEST_F(StudyEndToEnd, CompositingSamplesFitEquation55) {
  // The tiny corpus (tasks <= 2, small images) barely spans the compositing
  // model's inputs, so only the fit's structural properties are asserted;
  // the compositing bench fits on a real 1..64-rank corpus.
  const auto comp = composite_samples(*obs_);
  ASSERT_GE(comp.size(), 30u);
  const CompositeModel model = CompositeModel::fit(comp);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model.r_squared(), 0.0);
  EXPECT_GT(model.predict(1e5, 1e6), 0.0);
}

TEST_F(StudyEndToEnd, GpuIsFasterThanCpuProfileOnSameWork) {
  // Sanity of the architecture substitution: the K40-like profile should
  // beat the CPU profile on identical rendering work (as in Table 1).
  double cpu_total = 0.0, gpu_total = 0.0;
  for (const Observation& o : *obs_) {
    if (o.renderer != RendererKind::kRayTrace) continue;
    if (o.arch == "CPU1") cpu_total += o.sample.render_seconds;
    if (o.arch == "GPU1") gpu_total += o.sample.render_seconds;
  }
  EXPECT_GT(cpu_total, gpu_total * 1.5);
}

TEST(StudyHelpers, ScaleFromEnvDefaultsToOne) {
  EXPECT_DOUBLE_EQ(study_scale_from_env(), 1.0);
}

}  // namespace
}  // namespace isr::model
