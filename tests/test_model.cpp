// Tests for the statistical machinery and the performance models: exact
// coefficient recovery, R^2 behavior, k-fold CV, the paper's model forms,
// the §5.8 mapping, and the feasibility analyses.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/thread_pool.hpp"
#include "math/rng.hpp"
#include "model/feasibility.hpp"
#include "model/linreg.hpp"
#include "model/mapping.hpp"
#include "model/perfmodel.hpp"

namespace isr::model {
namespace {

TEST(LinReg, RecoversExactCoefficients) {
  // y = 2*x0 - 3*x1 + 5, noise-free.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform(0, 10), x1 = rng.uniform(-5, 5);
    X.push_back({x0, x1});
    y.push_back(2 * x0 - 3 * x1 + 5);
  }
  const FitResult fit = fit_linear(X, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_std, 0.0, 1e-9);
  EXPECT_NEAR(fit.predict({1.0, 1.0}), 4.0, 1e-9);
}

TEST(LinReg, NoiseLowersRSquaredButKeepsSlope) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    X.push_back({x});
    y.push_back(3 * x + 10 + rng.uniform(-5, 5));
  }
  const FitResult fit = fit_linear(X, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.residual_std, 1.0);
}

TEST(LinReg, SingularSystemReportsNotOk) {
  // Two identical features: X'X is singular.
  std::vector<std::vector<double>> X = {{1, 1}, {2, 2}, {3, 3}};
  std::vector<double> y = {1, 2, 3};
  EXPECT_FALSE(fit_linear(X, y).ok);
}

TEST(LinReg, UnderdeterminedReportsNotOk) {
  std::vector<std::vector<double>> X = {{1, 2}};
  std::vector<double> y = {1};
  EXPECT_FALSE(fit_linear(X, y).ok);
}

TEST(LinReg, NoInterceptOption) {
  std::vector<std::vector<double>> X = {{1}, {2}, {3}, {4}};
  std::vector<double> y = {2, 4, 6, 8};
  const FitResult fit = fit_linear(X, y, /*intercept=*/false);
  ASSERT_TRUE(fit.ok);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
}

TEST(CrossValidation, PerfectModelValidatesPerfectly) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(1, 50);
    X.push_back({x});
    y.push_back(7 * x + 2);
  }
  const CrossValidation cv = k_fold_cv(X, y, 3);
  ASSERT_EQ(cv.actual.size(), 60u);
  EXPECT_LT(cv.mean_abs_relative_error(), 1e-9);
  EXPECT_DOUBLE_EQ(cv.fraction_within(0.05), 1.0);
}

TEST(CrossValidation, AccuracyBucketsAreMonotonic) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(1, 100);
    X.push_back({x});
    y.push_back(2 * x * (1.0 + rng.uniform(-0.3, 0.3)));
  }
  const CrossValidation cv = k_fold_cv(X, y, 3);
  // Table 13's structure: the 50% bucket is at least as full as the 25%,
  // 10%, and 5% buckets.
  EXPECT_GE(cv.fraction_within(0.50), cv.fraction_within(0.25));
  EXPECT_GE(cv.fraction_within(0.25), cv.fraction_within(0.10));
  EXPECT_GE(cv.fraction_within(0.10), cv.fraction_within(0.05));
  EXPECT_GT(cv.fraction_within(0.50), 0.8);
}

TEST(CrossValidation, ParallelFoldsBitIdenticalToSerial) {
  // The folds fan out over the pool; the shuffle is serial and per-fold
  // results concatenate in fold order, so every prediction must match the
  // serial run bit for bit at any thread count.
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  Rng rng(6);
  for (int i = 0; i < 120; ++i) {
    const double x0 = rng.uniform(1, 50), x1 = rng.uniform(-10, 10);
    X.push_back({x0, x1});
    y.push_back(3 * x0 - 0.5 * x1 + 4 + rng.uniform(-1, 1));
  }
  const CrossValidation serial = k_fold_cv(X, y, 5);
  ASSERT_EQ(serial.actual.size(), 120u);
  for (const int threads : {1, 3, 4}) {
    core::ThreadPool pool(threads);
    const CrossValidation parallel = k_fold_cv(X, y, 5, 0xCF01Du, true, &pool);
    ASSERT_EQ(parallel.predicted.size(), serial.predicted.size()) << threads;
    ASSERT_EQ(parallel.actual.size(), serial.actual.size()) << threads;
    for (std::size_t i = 0; i < serial.predicted.size(); ++i) {
      EXPECT_EQ(parallel.predicted[i], serial.predicted[i]) << threads << " @ " << i;
      EXPECT_EQ(parallel.actual[i], serial.actual[i]) << threads << " @ " << i;
    }
  }
}

TEST(Correlation, DetectsSignAndStrength) {
  std::vector<double> a, pos, neg, noise;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0, 1);
    a.push_back(x);
    pos.push_back(2 * x + 0.01 * rng.uniform(-1, 1));
    neg.push_back(-x);
    noise.push_back(rng.uniform(0, 1));
  }
  EXPECT_GT(correlation(a, pos), 0.99);
  EXPECT_LT(correlation(a, neg), -0.99);
  EXPECT_LT(std::abs(correlation(a, noise)), 0.4);
}

// --- Performance models ----------------------------------------------------

std::vector<RenderSample> synthetic_samples(RendererKind kind, std::uint64_t seed,
                                            double noise) {
  // Ground-truth coefficients in the paper's form; samples span realistic
  // ranges of the input variables.
  std::vector<RenderSample> samples;
  Rng rng(seed);
  for (int i = 0; i < 120; ++i) {
    RenderSample s;
    ModelInputs& in = s.inputs;
    in.objects = rng.uniform(1e4, 2e6);
    in.active_pixels = rng.uniform(1e4, 2e6);
    in.visible_objects = std::min(in.objects, in.active_pixels);
    in.pixels_per_tri = rng.uniform(2, 12);
    in.samples_per_ray = rng.uniform(50, 400);
    in.cells_spanned = rng.uniform(32, 320);
    const double jitter = 1.0 + noise * rng.uniform(-1, 1);
    switch (kind) {
      case RendererKind::kRayTrace:
        s.build_seconds = (5e-8 * in.objects + 1e-3) * jitter;
        s.render_seconds =
            (2e-9 * in.active_pixels * std::log2(in.objects) + 3e-8 * in.active_pixels + 1e-2) *
            jitter;
        break;
      case RendererKind::kRasterize:
        s.render_seconds =
            (1.3e-8 * in.objects + 2e-9 * in.visible_objects * in.pixels_per_tri + 1.7e-2) *
            jitter;
        break;
      case RendererKind::kVolume:
        s.render_seconds = (3.7e-10 * in.active_pixels * in.cells_spanned +
                            4.5e-9 * in.active_pixels * in.samples_per_ray + 9e-2) *
                           jitter;
        break;
    }
    samples.push_back(s);
  }
  return samples;
}

class ModelKinds : public ::testing::TestWithParam<RendererKind> {};
INSTANTIATE_TEST_SUITE_P(AllRenderers, ModelKinds,
                         ::testing::Values(RendererKind::kRayTrace,
                                           RendererKind::kRasterize,
                                           RendererKind::kVolume));

TEST_P(ModelKinds, RecoversSyntheticGroundTruth) {
  const auto samples = synthetic_samples(GetParam(), 11, 0.0);
  const PerfModel model = PerfModel::fit(GetParam(), samples);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.r_squared(), 0.9999);
  for (const RenderSample& s : samples)
    EXPECT_NEAR(model.predict(s.inputs), s.total_seconds(),
                1e-4 * std::max(1.0, s.total_seconds()));
}

TEST_P(ModelKinds, ToleratesMeasurementNoise) {
  const auto samples = synthetic_samples(GetParam(), 12, 0.10);
  const PerfModel model = PerfModel::fit(GetParam(), samples);
  ASSERT_TRUE(model.ok());
  // The paper's Table 12 values: R^2 >= ~0.94 for most models.
  EXPECT_GT(model.r_squared(), 0.9);
  const CrossValidation cv = model.cross_validate(samples);
  EXPECT_GT(cv.fraction_within(0.50), 0.95);  // Table 13's 50% bucket
  EXPECT_GT(cv.fraction_within(0.25), 0.7);
}

TEST(PerfModel, PaperCoefficientsHaveExpectedArity) {
  const PerfModel rt =
      PerfModel::fit(RendererKind::kRayTrace, synthetic_samples(RendererKind::kRayTrace, 13, 0.0));
  EXPECT_EQ(rt.paper_coefficients().size(), 5u);  // c0..c4 (Eq. 5.1)
  const PerfModel vr =
      PerfModel::fit(RendererKind::kVolume, synthetic_samples(RendererKind::kVolume, 14, 0.0));
  EXPECT_EQ(vr.paper_coefficients().size(), 3u);  // c0..c2 (Eq. 5.3)
}

TEST(PerfModel, BuildIsSeparableForAmortization) {
  const auto samples = synthetic_samples(RendererKind::kRayTrace, 15, 0.0);
  const PerfModel model = PerfModel::fit(RendererKind::kRayTrace, samples);
  const ModelInputs& in = samples.front().inputs;
  EXPECT_NEAR(model.predict(in), model.predict_build(in) + model.predict_render(in), 1e-12);
  EXPECT_GT(model.predict_build(in), 0.0);
}

TEST(CompositeModelFit, RecoversPlaneAndValidates) {
  std::vector<CompositeSample> samples;
  Rng rng(16);
  for (int i = 0; i < 80; ++i) {
    CompositeSample s;
    s.avg_active_pixels = rng.uniform(1e4, 2e6);
    s.pixels = rng.uniform(2.5e5, 8e6);
    s.seconds = 1.9e-8 * s.avg_active_pixels + 4.7e-9 * s.pixels + 1e-3;
    samples.push_back(s);
  }
  const CompositeModel model = CompositeModel::fit(samples);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.r_squared(), 0.9999);
  EXPECT_NEAR(model.coefficients()[0], 1.9e-8, 1e-10);
  const CrossValidation cv = model.cross_validate(samples);
  EXPECT_LT(cv.mean_abs_relative_error(), 0.01);
}

// --- Mapping (§5.8) ---------------------------------------------------------

TEST(Mapping, SurfaceConfigurationFormulas) {
  const ModelInputs in =
      map_configuration(RendererKind::kRayTrace, 200, 32, 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(in.objects, 12.0 * 200 * 200);
  // AP = 0.55 * pixels / 32^(1/3); 32^(1/3) = 3.1748...
  EXPECT_NEAR(in.active_pixels, 0.55 * 1024 * 1024 / std::cbrt(32.0), 1.0);
  // VO*PPT == 4*AP (total pixel considerations), though T_RT ignores it.
  EXPECT_NEAR(in.visible_objects * in.pixels_per_tri, 4.0 * in.active_pixels, 1.0);
}

TEST(Mapping, RasterizationUsesVisibleObjectsAndPpt) {
  const ModelInputs in =
      map_configuration(RendererKind::kRasterize, 100, 1, 512.0 * 512.0);
  EXPECT_DOUBLE_EQ(in.objects, 120000.0);
  EXPECT_DOUBLE_EQ(in.visible_objects, std::min(in.active_pixels, in.objects));
  // The paper's "pixels considered = 4x active pixels", spread over VO.
  EXPECT_NEAR(in.visible_objects * in.pixels_per_tri, 4.0 * in.active_pixels, 1.0);
}

TEST(Mapping, VolumeConfigurationFormulas) {
  const ModelInputs in = map_configuration(RendererKind::kVolume, 200, 8, 1e6);
  EXPECT_DOUBLE_EQ(in.objects, 8e6);
  EXPECT_DOUBLE_EQ(in.cells_spanned, 200.0);
  EXPECT_NEAR(in.samples_per_ray, 373.0 / 2.0, 1e-9);  // 8^(1/3) = 2
}

TEST(Mapping, MoreTasksMeanFewerActivePixelsPerTask) {
  const double ap1 =
      map_configuration(RendererKind::kVolume, 100, 1, 1e6).active_pixels;
  const double ap8 =
      map_configuration(RendererKind::kVolume, 100, 8, 1e6).active_pixels;
  EXPECT_NEAR(ap1 / ap8, 2.0, 1e-9);
}

// --- Feasibility (§5.9) ------------------------------------------------------

TEST(Feasibility, LargerImagesFitFewerInBudget) {
  const PerfModel model =
      PerfModel::fit(RendererKind::kRayTrace, synthetic_samples(RendererKind::kRayTrace, 17, 0.0));
  const auto points = images_in_budget(model, 60.0, 200, 32, {1024, 2048, 4096});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].images_in_budget, points[1].images_in_budget);
  EXPECT_GT(points[1].images_in_budget, points[2].images_in_budget);
  EXPECT_GT(points[0].images_in_budget, 0);
}

TEST(Feasibility, MoreBudgetFitsAtLeastAsManyImages) {
  const PerfModel model =
      PerfModel::fit(RendererKind::kRayTrace, synthetic_samples(RendererKind::kRayTrace, 20, 0.0));
  long previous = -1;
  for (const double budget : {0.0, 1.0, 30.0, 60.0, 3600.0}) {
    const auto points = images_in_budget(model, budget, 200, 32, {1024});
    ASSERT_EQ(points.size(), 1u);
    EXPECT_GE(points[0].images_in_budget, previous) << "budget " << budget;
    EXPECT_GE(points[0].images_in_budget, 0);
    previous = points[0].images_in_budget;
  }
}

TEST(Feasibility, AbsurdBudgetSaturatesInsteadOfOverflowing) {
  const PerfModel model =
      PerfModel::fit(RendererKind::kRayTrace, synthetic_samples(RendererKind::kRayTrace, 21, 0.0));
  // budget/frame_time far beyond LONG_MAX: the double->long cast must
  // saturate, never wrap to a negative count.
  const auto points = images_in_budget(model, 1e30, 200, 32, {1024});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].images_in_budget, std::numeric_limits<long>::max());
  EXPECT_GT(points[0].build_seconds, 0.0);  // RT pays a build charge
}

TEST(Feasibility, RayTracingWinsWithBigDataSmallImages) {
  // Figure 15's shape: lots of geometry + few pixels favors ray tracing;
  // big images + little geometry favors rasterization.
  const PerfModel rt =
      PerfModel::fit(RendererKind::kRayTrace, synthetic_samples(RendererKind::kRayTrace, 18, 0.0));
  const PerfModel rast = PerfModel::fit(RendererKind::kRasterize,
                                        synthetic_samples(RendererKind::kRasterize, 19, 0.0));
  const auto cells = rt_vs_rast(rt, rast, 100, 32, {384, 4096}, {100, 500});
  ASSERT_EQ(cells.size(), 4u);
  auto find = [&](int edge, int n) {
    for (const RatioCell& c : cells)
      if (c.image_edge == edge && c.n_per_task == n) return c.ratio;
    return -1.0;
  };
  // ratio = T_RAST / T_RT: higher means ray tracing more favorable.
  EXPECT_GT(find(384, 500), find(4096, 500));
  EXPECT_GT(find(384, 500), find(384, 100));
}

}  // namespace
}  // namespace isr::model
