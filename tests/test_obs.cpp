// Tests for the observability layer (src/obs/): log2-bucket histogram
// boundaries, merge associativity, percentile estimates vs exact
// nearest-rank on the same samples, trace ring overflow + drop counters,
// Chrome trace_event export well-formedness, replay-mode trace byte
// reproducibility across two fresh clusters, and the "tracing never
// changes response bytes" contract (on, off, and absent).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/stream.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "serve/advisor.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"

namespace isr {
namespace {

using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceRecorder;

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreExactPowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(0.999), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1.0), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(1.999), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2.0), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3.999), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4.0), 3);
  // Every interior boundary: 2^(b-1) opens bucket b, the value just below
  // it still belongs to b-1.
  for (int b = 2; b <= 62; ++b) {
    const double lo = LatencyHistogram::bucket_floor_us(b);
    EXPECT_EQ(LatencyHistogram::bucket_of(lo), b) << "floor of bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_of(lo * (1.0 - 1e-12)), b - 1)
        << "just below bucket " << b;
  }
  // Overflow bucket: 2^62 and beyond (including inf).
  EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_floor_us(63)), 63);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e300), 63);
  // Defensive sink: NaN and negatives land in bucket 0, not UB.
  EXPECT_EQ(LatencyHistogram::bucket_of(-5.0), 0);
  // Floor/ceil invariants.
  EXPECT_EQ(LatencyHistogram::bucket_floor_us(0), 0.0);
  EXPECT_EQ(LatencyHistogram::bucket_ceil_us(0), 1.0);
  EXPECT_EQ(LatencyHistogram::bucket_floor_us(5), 16.0);
  EXPECT_EQ(LatencyHistogram::bucket_ceil_us(5), 32.0);
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_us(), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
  h.record(3.0);
  h.record(100.0);
  h.record(0.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum_us(), 103.25);
  EXPECT_DOUBLE_EQ(h.min_us(), 0.25);
  EXPECT_DOUBLE_EQ(h.max_us(), 100.0);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_of(3.0)), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_us(50.0), 0.0);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  // Three histograms over disjoint-ish ranges; (a+b)+c must equal a+(b+c)
  // and b+a exactly — counts, extremes, and therefore every percentile.
  LatencyHistogram a, b, c;
  for (int i = 0; i < 40; ++i) a.record(1.0 + 3.0 * i);
  for (int i = 0; i < 25; ++i) b.record(500.0 + 11.0 * i);
  for (int i = 0; i < 10; ++i) c.record(0.5 * i);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  LatencyHistogram ba = b;
  ba.merge(a);
  ba.merge(c);

  for (const LatencyHistogram* other : {&a_bc, &ba}) {
    EXPECT_EQ(ab_c.count(), other->count());
    EXPECT_DOUBLE_EQ(ab_c.min_us(), other->min_us());
    EXPECT_DOUBLE_EQ(ab_c.max_us(), other->max_us());
    for (int bkt = 0; bkt < LatencyHistogram::kBuckets; ++bkt)
      EXPECT_EQ(ab_c.bucket_count(bkt), other->bucket_count(bkt)) << "bucket " << bkt;
    for (const double p : {0.0, 50.0, 90.0, 99.0, 100.0})
      EXPECT_DOUBLE_EQ(ab_c.percentile_us(p), other->percentile_us(p)) << "p" << p;
  }
  EXPECT_EQ(ab_c.count(), 75u);
}

TEST(HistogramTest, PercentileEstimateLandsInTheExactSamplesBucket) {
  // Known data: a deterministic spread over four decades. The histogram's
  // nearest-rank walk must select the same bucket the exact nearest-rank
  // sample lives in, and the interpolated estimate must stay inside that
  // bucket's bounds (2x relative error by construction); p0/p100 are exact.
  std::vector<double> samples;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 1.0 + static_cast<double>(state % 100000) / 7.0;
    samples.push_back(v);
    h.record(v);
  }
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double exact = cluster::percentile(samples, p);
    const double est = h.percentile_us(p);
    if (p <= 0.0 || p >= 100.0) {
      EXPECT_DOUBLE_EQ(est, exact) << "p" << p;
      continue;
    }
    const int bucket = LatencyHistogram::bucket_of(exact);
    EXPECT_GE(est, LatencyHistogram::bucket_floor_us(bucket)) << "p" << p;
    EXPECT_LE(est, LatencyHistogram::bucket_ceil_us(bucket)) << "p" << p;
  }
}

TEST(HistogramTest, EmptyAndSingleSampleEdges) {
  LatencyHistogram empty;
  for (const double p : {0.0, 50.0, 100.0}) EXPECT_EQ(empty.percentile_us(p), 0.0);
  LatencyHistogram one;
  one.record(37.5);
  // A single sample answers every percentile exactly: the interpolation
  // clamps to the recorded min == max.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(one.percentile_us(p), 37.5) << "p" << p;
}

TEST(HistogramTest, ToJsonDumpsOnlyNonZeroBuckets) {
  LatencyHistogram h;
  h.record(3.0);   // bucket 2 (floor 2)
  h.record(3.5);   // bucket 2
  h.record(20.0);  // bucket 5 (floor 16)
  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[[2,2],[16,1]]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

// --- Trace recorder ---------------------------------------------------------

TraceEvent instant(const char* name, std::int64_t ts) {
  TraceEvent e;
  e.name = name;
  e.cat = "req";
  e.phase = 'i';
  e.ts_us = ts;
  return e;
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(8);
  rec.record(instant("admit", 1));
  EXPECT_EQ(rec.buffered(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder rec(/*ring_capacity=*/8);
  rec.enable();
  for (int i = 0; i < 20; ++i) rec.record(instant("tick", i));
  EXPECT_EQ(rec.buffered(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  const std::string json = rec.chrome_trace_json();
  // Drop-oldest: only ts 12..19 survive, and the export publishes the
  // drop counter.
  EXPECT_EQ(json.find("\"ts\":3,"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":11,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":12,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":19,"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":12"), std::string::npos);
  EXPECT_NE(json.find("\"events\":8"), std::string::npos);
  rec.clear();
  EXPECT_EQ(rec.buffered(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

// Every "ts":N in export order; the export contract sorts them ascending.
std::vector<long> extract_ts(const std::string& json) {
  std::vector<long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::strtol(json.c_str() + pos, nullptr, 10));
  }
  return out;
}

TEST(TraceTest, ExportIsWellFormedAndSortedAcrossThreads) {
  TraceRecorder rec;
  rec.enable();
  // Two recording threads, interleaved timestamps; the export must order
  // by ts regardless of which ring held what.
  std::thread even([&rec] {
    for (int i = 0; i < 10; ++i) rec.record(instant("even", 2 * i));
  });
  std::thread odd([&rec] {
    for (int i = 0; i < 10; ++i) {
      TraceEvent e = instant("odd", 2 * i + 1);
      e.phase = 'X';
      e.dur_us = 1;
      rec.record(e);
    }
  });
  even.join();
  odd.join();

  const std::string json = rec.chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Instants carry the scope field, complete spans carry dur.
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1"), std::string::npos);
  const std::vector<long> ts = extract_ts(json);
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

// --- Cluster integration ----------------------------------------------------

model::StudyConfig tiny_calibration() {
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

class ObsClusterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    primary_ = std::make_shared<serve::ModelRegistry>();
  }
  static void TearDownTestSuite() { primary_.reset(); }
  static std::shared_ptr<serve::ModelRegistry> primary_;

  static cluster::ClusterConfig base_config(int shards, std::size_t cache_entries) {
    cluster::ClusterConfig cfg;
    cfg.service.calibration = tiny_calibration();
    cfg.shards = shards;
    cfg.cache_entries = cache_entries;
    cfg.batch_size = 4;
    return cfg;
  }

  static std::vector<serve::AdvisorRequest> requests(int count) {
    std::vector<serve::AdvisorRequest> out;
    for (int j = 0; j < count; ++j) {
      serve::AdvisorRequest req;
      req.arch = (j % 2 == 0) ? "CPU1" : "GPU1";
      req.renderer = (j % 3 == 0) ? model::RendererKind::kRayTrace
                                  : (j % 3 == 1) ? model::RendererKind::kRasterize
                                                 : model::RendererKind::kVolume;
      req.n_per_task = 16 + (j % 4);
      req.image_edge = 96 + 8 * (j % 6);
      req.tasks = 1 + (j % 2);
      out.push_back(req);
    }
    return out;
  }
};

std::shared_ptr<serve::ModelRegistry> ObsClusterFixture::primary_;

TEST_F(ObsClusterFixture, ReplayTraceIsByteIdenticalAcrossFreshClusters) {
  // A 2x-overload schedule (the shed test's shape) so the trace carries
  // shed instants alongside complete admit/queue/eval/deliver chains. Two
  // FRESH clusters replaying it with virtual-clock recorders must export
  // byte-identical traces: every timestamp comes from the schedule and the
  // backlog arithmetic, every lane from the stream id.
  constexpr int kRequests = 96;
  constexpr long kDeadlineUs = 24;
  cluster::AdmissionSchedule schedule;
  for (int i = 0; i < kRequests; ++i)
    schedule.push_back({0, static_cast<std::uint64_t>(i),
                        static_cast<std::int64_t>(2 * i)});
  const std::vector<serve::AdvisorRequest> base = requests(kRequests);

  const auto run = [&]() {
    TraceRecorder tracer;
    tracer.enable(/*virtual_clock=*/true);
    cluster::ClusterConfig cfg = base_config(1, 0);
    cfg.trace = &tracer;
    cluster::ServingCluster serving(std::move(cfg), primary_);
    serving.begin_replay(schedule);
    cluster::StreamSession session = serving.open_stream();
    for (serve::AdvisorRequest req : base) {
      req.deadline_us = kDeadlineUs;
      session.submit(req);
    }
    session.close();
    return tracer.chrome_trace_json();
  };

  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  // And it is a real lifecycle trace, not an empty shell.
  EXPECT_NE(first.find("\"name\":\"admit\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"eval\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"deliver\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"shed\""), std::string::npos);
  EXPECT_NE(first.find("\"note\":\"deadline\""), std::string::npos);
  EXPECT_EQ(first.find("\"dropped\":0"), first.find("\"dropped\":"));
}

TEST_F(ObsClusterFixture, TracingNeverChangesResponseBytes) {
  // The acceptance contract: response bytes identical with tracing on,
  // off (recorder wired but disabled), and absent (null pointer).
  const std::vector<serve::AdvisorRequest> base = requests(24);
  const auto run = [&](bool wire, bool enable) {
    TraceRecorder tracer;
    if (enable) tracer.enable();
    cluster::ClusterConfig cfg = base_config(2, 64);
    if (wire) cfg.trace = &tracer;
    cluster::ServingCluster serving(std::move(cfg), primary_);
    std::vector<serve::AdvisorResponse> responses = serving.serve_batch(base);
    std::string bytes;
    for (const serve::AdvisorResponse& r : responses) bytes += serve::to_jsonl(r) + "\n";
    return bytes;
  };
  const std::string absent = run(false, false);
  const std::string off = run(true, false);
  const std::string on = run(true, true);
  EXPECT_EQ(absent, off);
  EXPECT_EQ(absent, on);
}

TEST_F(ObsClusterFixture, LiveTraceCoversTheRequestLifecycle) {
  TraceRecorder tracer;
  tracer.enable();
  cluster::ClusterConfig cfg = base_config(2, 64);
  cfg.trace = &tracer;
  cluster::ServingCluster serving(std::move(cfg), primary_);
  const std::vector<serve::AdvisorRequest> base = requests(16);
  serving.serve_batch(base);
  serving.serve_batch(base);  // second pass hits the cache

  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"name\":\"admit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"eval\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cache-probe\""), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"cache-hit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"batch-drain\""), std::string::npos);

  // The cluster's stage histograms populated alongside the trace.
  const cluster::ClusterMetrics m = serving.metrics();
  EXPECT_GT(m.queue_wait.count(), 0u);
  EXPECT_GT(m.service.count(), 0u);
  EXPECT_GT(m.e2e.count(), 0u);
  EXPECT_GE(m.e2e.percentile_us(99.0), m.e2e.percentile_us(50.0));
  EXPECT_NE(m.to_jsonl().find("\"queue_wait_us\":{"), std::string::npos);
  EXPECT_NE(m.to_jsonl().find("\"service_us\":{"), std::string::npos);
  EXPECT_NE(m.to_jsonl().find("\"e2e_us\":{"), std::string::npos);
}

}  // namespace
}  // namespace isr
