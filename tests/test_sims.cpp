// Proxy-simulation tests: fields evolve plausibly, mesh descriptions pass
// the blueprint conventions, and zero-copy publishing really is zero-copy.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <tuple>

#include "conduit/blueprint.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/decompose.hpp"
#include "sims/kripke.hpp"
#include "sims/lulesh.hpp"

namespace isr::sims {
namespace {

TEST(Decomposition, FactorsCoverAllRanks) {
  for (const int n : {1, 2, 4, 6, 8, 12, 16, 27, 64}) {
    const Decomposition d = Decomposition::create(n);
    EXPECT_EQ(d.blocks.x * d.blocks.y * d.blocks.z, n) << n;
    // Every rank maps to a distinct block.
    std::set<std::tuple<int, int, int>> seen;
    for (int r = 0; r < n; ++r) {
      const Vec3i b = d.block_of(r);
      EXPECT_GE(b.x, 0);
      EXPECT_LT(b.x, d.blocks.x);
      EXPECT_TRUE(seen.insert({b.x, b.y, b.z}).second);
    }
  }
}

TEST(Decomposition, NearCubicFor8And64) {
  EXPECT_EQ(Decomposition::create(8).blocks, (Vec3i{2, 2, 2}));
  EXPECT_EQ(Decomposition::create(64).blocks, (Vec3i{4, 4, 4}));
}

TEST(CloverLeaf, ShockExpandsOutward) {
  CloverLeaf sim(24, 24, 24);
  const std::vector<double> initial = sim.energy();
  for (int i = 0; i < 10; ++i) sim.step();
  EXPECT_EQ(sim.cycle(), 10);
  EXPECT_GT(sim.time(), 0.0);
  // Energy spreads: the initially cold far corner warms up relative to its
  // start, the hot corner cools.
  const std::size_t hot = 0;
  const std::size_t far = sim.energy().size() - 1;
  EXPECT_LT(sim.energy()[hot], initial[hot]);
  EXPECT_GE(sim.energy()[far], initial[far] - 1e-9);
  for (const double e : sim.energy()) {
    EXPECT_GT(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST(CloverLeaf, PressureFollowsIdealGas) {
  CloverLeaf sim(8, 8, 8);
  for (std::size_t c = 0; c < sim.cell_count(); ++c)
    EXPECT_NEAR(sim.pressure()[c], 0.4 * sim.density()[c] * sim.energy()[c], 1e-9);
}

TEST(CloverLeaf, DescribePassesBlueprintVerify) {
  CloverLeaf sim(8, 8, 8, 2, 8);
  conduit::Node data;
  sim.describe(data);
  std::string err;
  EXPECT_TRUE(conduit::blueprint::verify_mesh(data, err)) << err;
  EXPECT_EQ(data["state/domain"].as_int64(), 2);
  // Rank 2 of a 2x2x2 decomposition is offset from the origin.
  EXPECT_NE(data["coords/origin/x"].to_float64() + data["coords/origin/y"].to_float64() +
                data["coords/origin/z"].to_float64(),
            0.0);
}

TEST(CloverLeaf, PublishedFieldsAreZeroCopy) {
  CloverLeaf sim(8, 8, 8);
  conduit::Node data;
  sim.describe(data);
  const double before = data["fields/energy/values"].as_float64_array()[0];
  sim.step();  // mutates the simulation's arrays in place
  const double after = data["fields/energy/values"].as_float64_array()[0];
  EXPECT_TRUE(data["fields/energy/values"].is_external());
  EXPECT_NE(before, after);
}

TEST(Kripke, FluxIsPositiveAndBounded) {
  Kripke sim(16, 16, 16);
  for (int i = 0; i < 4; ++i) sim.step();
  double total = 0.0;
  for (const double phi : sim.scalar_flux()) {
    EXPECT_GE(phi, 0.0);
    EXPECT_TRUE(std::isfinite(phi));
    total += phi;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Kripke, AbsorberCastsShadow) {
  Kripke sim(24, 24, 24);
  for (int i = 0; i < 5; ++i) sim.step();
  // The source is near x=0.2, the absorber slab spans x in [0.45, 0.6]:
  // flux in front of the slab must exceed flux behind it.
  const auto& phi = sim.scalar_flux();
  auto zone = [&](double x) {
    const int i = static_cast<int>(x * 24);
    return phi[static_cast<std::size_t>(i + 24 * (12 + 24 * 12))];
  };
  EXPECT_GT(zone(0.35), 4.0 * zone(0.8));
}

TEST(Kripke, SourceIterationConverges) {
  Kripke sim(12, 12, 12);
  sim.step();
  std::vector<double> prev = sim.scalar_flux();
  double delta_prev = 1e30;
  for (int i = 0; i < 6; ++i) {
    sim.step();
    double delta = 0.0;
    for (std::size_t z = 0; z < prev.size(); ++z)
      delta += std::abs(sim.scalar_flux()[z] - prev[z]);
    EXPECT_LT(delta, delta_prev + 1e-9);
    delta_prev = delta;
    prev = sim.scalar_flux();
  }
}

TEST(Kripke, DescribePassesBlueprintVerify) {
  Kripke sim(8, 8, 8);
  sim.step();
  conduit::Node data;
  sim.describe(data);
  std::string err;
  EXPECT_TRUE(conduit::blueprint::verify_mesh(data, err)) << err;
  // Kripke's field is copied (layout mismatch), not zero-copy.
  EXPECT_FALSE(data["fields/phi/values"].is_external());
}

TEST(Lulesh, MeshDeformsUnderTheBlast) {
  Lulesh sim(8);
  const std::vector<float> x0 = sim.x();
  for (int i = 0; i < 10; ++i) sim.step();
  double moved = 0.0;
  for (std::size_t n = 0; n < x0.size(); ++n) moved += std::abs(sim.x()[n] - x0[n]);
  EXPECT_GT(moved, 1e-4);
  for (const float x : sim.x()) EXPECT_TRUE(std::isfinite(x));
  for (const double e : sim.e()) {
    EXPECT_GT(e, 0.0);
    EXPECT_TRUE(std::isfinite(e));
  }
}

TEST(Lulesh, EnergyDiffusesFromTheCorner) {
  Lulesh sim(8);
  const double hot0 = sim.e()[0];
  for (int i = 0; i < 10; ++i) sim.step();
  EXPECT_LT(sim.e()[0], hot0);  // blast element cools as it does work
  EXPECT_GT(sim.e()[1], 1e-6);  // neighbors heat up
}

TEST(Lulesh, DescribeMatchesListing41) {
  // The exact publish pattern of Listing 4.1: external coords, hex
  // connectivity, element energy.
  Lulesh sim(4);
  conduit::Node data;
  sim.describe(data);
  std::string err;
  ASSERT_TRUE(conduit::blueprint::verify_mesh(data, err)) << err;
  EXPECT_EQ(data["coords/type"].as_string(), "explicit");
  EXPECT_EQ(data["topology/elements/shape"].as_string(), "hexs");
  EXPECT_TRUE(data["coords/x"].is_external());
  EXPECT_TRUE(data["fields/e/values"].is_external());
  EXPECT_EQ(data["topology/elements/connectivity"].element_count(), sim.elem_count() * 8);
}

TEST(Lulesh, ZeroCopyCoordsFollowTheMesh) {
  Lulesh sim(4);
  conduit::Node data;
  sim.describe(data);
  const float before = data["coords/x"].as_float32_array()[10];
  for (int i = 0; i < 5; ++i) sim.step();
  const float after = data["coords/x"].as_float32_array()[10];
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace isr::sims
