// BVH invariants and traversal correctness: every primitive reachable
// exactly once, node bounds contain children, traversal agrees with brute
// force, any-hit consistent with closest-hit. Parameterized across scenes.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "dpp/primitives.hpp"
#include "math/rng.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/bvh.hpp"

namespace isr::render {
namespace {

mesh::TriMesh scene_by_name(const std::string& name) {
  if (name == "sphere") return mesh::make_icosphere({0.5f, 0.5f, 0.5f}, 0.4f, 3);
  if (name == "flake") return mesh::make_sphere_flake({0.5f, 0.5f, 0.5f}, 0.2f, 2);
  if (name == "room") return mesh::make_room(4);
  if (name == "terrain") return mesh::make_terrain(24);
  return {};
}

class BvhScenes : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Scenes, BvhScenes,
                         ::testing::Values("sphere", "flake", "room", "terrain"));

TEST_P(BvhScenes, EveryPrimitiveInExactlyOneLeaf) {
  const mesh::TriMesh scene = scene_by_name(GetParam());
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  ASSERT_EQ(bvh.prim_order.size(), scene.triangle_count());
  std::set<int> prims(bvh.prim_order.begin(), bvh.prim_order.end());
  EXPECT_EQ(prims.size(), scene.triangle_count());

  if (bvh.single_leaf() || bvh.empty()) return;
  // Walk the tree; count leaf references.
  std::set<int> leaves;
  std::function<void(int)> walk = [&](int child) {
    if (child < 0) {
      EXPECT_TRUE(leaves.insert(~child).second) << "leaf visited twice";
      return;
    }
    const BvhNode& node = bvh.nodes[static_cast<std::size_t>(child)];
    walk(node.left);
    walk(node.right);
  };
  const BvhNode& root = bvh.nodes[0];
  walk(root.left);
  walk(root.right);
  EXPECT_EQ(leaves.size(), scene.triangle_count());
}

TEST_P(BvhScenes, NodeBoundsContainPrimitives) {
  const mesh::TriMesh scene = scene_by_name(GetParam());
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  if (bvh.empty() || bvh.single_leaf()) return;

  const float eps = 1e-4f * length(bvh.scene_bounds.extent());
  std::function<AABB(int)> check = [&](int child) -> AABB {
    if (child < 0) return scene.triangle_bounds(
        static_cast<std::size_t>(bvh.prim_order[static_cast<std::size_t>(~child)]));
    const BvhNode& node = bvh.nodes[static_cast<std::size_t>(child)];
    const AABB left = check(node.left);
    const AABB right = check(node.right);
    // Stored child bounds must contain the true subtree bounds.
    EXPECT_LE(node.left_bounds.lo.x, left.lo.x + eps);
    EXPECT_GE(node.left_bounds.hi.x, left.hi.x - eps);
    EXPECT_LE(node.right_bounds.lo.y, right.lo.y + eps);
    EXPECT_GE(node.right_bounds.hi.z, right.hi.z - eps);
    AABB merged = left;
    merged.expand(right);
    return merged;
  };
  const BvhNode& root = bvh.nodes[0];
  AABB total = check(root.left);
  total.expand(check(root.right));
  EXPECT_TRUE(bvh.scene_bounds.contains(total.center()));
}

TEST_P(BvhScenes, TraversalMatchesBruteForce) {
  const mesh::TriMesh scene = scene_by_name(GetParam());
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  const AABB bounds = scene.bounds();
  const Vec3f center = bounds.center();
  const float radius = length(bounds.extent());

  Rng rng(99);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    // Random rays aimed at the scene from outside.
    const Vec3f origin =
        center + normalize(Vec3f{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}) *
                     radius * 1.5f;
    const Vec3f target = center + Vec3f{rng.uniform(-0.3f, 0.3f), rng.uniform(-0.3f, 0.3f),
                                        rng.uniform(-0.3f, 0.3f)} *
                                      radius;
    const Vec3f dir = normalize(target - origin);

    long long steps = 0;
    const HitResult fast = intersect_closest(bvh, scene, origin, dir, 0.0f, 1e30f, steps);

    // Brute force reference.
    HitResult ref;
    ref.t = 1e30f;
    for (std::size_t t = 0; t < scene.triangle_count(); ++t) {
      float tt, u, v;
      if (intersect_triangle(origin, dir, scene.vertex(t, 0), scene.vertex(t, 1),
                             scene.vertex(t, 2), 0.0f, ref.t, tt, u, v)) {
        ref.prim = static_cast<int>(t);
        ref.t = tt;
      }
    }

    EXPECT_EQ(fast.hit(), ref.hit()) << "ray " << i;
    if (fast.hit() && ref.hit()) {
      EXPECT_NEAR(fast.t, ref.t, 1e-3f * radius) << "ray " << i;
      ++hits;
    }
  }
  EXPECT_GT(hits, 50) << "test should actually hit the scene";
}

TEST_P(BvhScenes, AnyHitConsistentWithClosest) {
  const mesh::TriMesh scene = scene_by_name(GetParam());
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  const AABB bounds = scene.bounds();
  const float radius = length(bounds.extent());

  Rng rng(123);
  for (int i = 0; i < 100; ++i) {
    const Vec3f origin = bounds.center() +
                         Vec3f{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)} *
                             radius;
    const Vec3f dir =
        normalize(Vec3f{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});
    long long s1 = 0, s2 = 0;
    const bool closest = intersect_closest(bvh, scene, origin, dir, 0.0f, 1e30f, s1).hit();
    const bool any = intersect_any(bvh, scene, origin, dir, 0.0f, 1e30f, s2);
    EXPECT_EQ(closest, any);
  }
}

TEST(Bvh, EmptyAndSingleTriangle) {
  dpp::Device dev = dpp::Device::serial();
  mesh::TriMesh empty;
  const Bvh none = build_lbvh(dev, empty);
  EXPECT_TRUE(none.empty());
  long long steps = 0;
  EXPECT_FALSE(intersect_closest(none, empty, {0, 0, 0}, {0, 0, 1}, 0, 1e30f, steps).hit());

  mesh::TriMesh one;
  one.points = {{0, 0, 1}, {1, 0, 1}, {0, 1, 1}};
  one.tris = {0, 1, 2};
  one.scalars = {0, 0, 0};
  const Bvh single = build_lbvh(dev, one);
  EXPECT_TRUE(single.single_leaf());
  const HitResult hit =
      intersect_closest(single, one, {0.2f, 0.2f, 0.0f}, {0, 0, 1}, 0.0f, 10.0f, steps);
  ASSERT_TRUE(hit.hit());
  EXPECT_NEAR(hit.t, 1.0f, 1e-5f);
}

TEST(Bvh, MaxDistanceRespected) {
  const mesh::TriMesh scene = mesh::make_icosphere({0, 0, 5}, 1.0f, 2);
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  long long steps = 0;
  // Sphere surface begins at z = 4; a tmax of 2 cannot reach it.
  EXPECT_FALSE(intersect_any(bvh, scene, {0, 0, 0}, {0, 0, 1}, 0.0f, 2.0f, steps));
  EXPECT_TRUE(intersect_any(bvh, scene, {0, 0, 0}, {0, 0, 1}, 0.0f, 10.0f, steps));
}

TEST(Bvh, TunedBvhVisitsFewerOrEqualNodes) {
  // The median-split baseline BVH should trace with no more work than the
  // LBVH on average — the quality gap Tables 3-4 attribute to vendor BVHs.
  // (Covered further in baseline tests; here we just check LBVH step counts
  // are sane: bounded by primitive count per ray.)
  const mesh::TriMesh scene = mesh::make_sphere_flake({0, 0, 0}, 1.0f, 2);
  dpp::Device dev = dpp::Device::serial();
  const Bvh bvh = build_lbvh(dev, scene);
  long long steps = 0;
  intersect_closest(bvh, scene, {0, 0, 5}, {0, 0, -1}, 0.0f, 1e30f, steps);
  EXPECT_LT(steps, static_cast<long long>(scene.triangle_count()));
  EXPECT_GT(steps, 0);
}

}  // namespace
}  // namespace isr::render
