// Cross-module integration properties:
//  * a domain rendered in distributed blocks and composited must match the
//    same domain rendered on a single rank (the sort-last contract);
//  * the Strawman runtime + compositor work end to end across ranks;
//  * renderer agreement holds across procedural scenes.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/compositor.hpp"
#include "insitu/strawman.hpp"
#include "math/colormap.hpp"
#include "mesh/external_faces.hpp"
#include "mesh/scenes.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/decompose.hpp"

namespace isr {
namespace {

// A closed-form global field so rank blocks need no cross-rank
// normalization: f(p) = smooth radial falloff from the domain center.
float global_field(Vec3f p) {
  const Vec3f d = p - Vec3f{0.5f, 0.5f, 0.5f};
  return clamp01(1.2f - 2.0f * length(d));
}

mesh::StructuredGrid rank_grid(int rank, int ranks, int n) {
  const sims::Decomposition dec = sims::Decomposition::create(ranks);
  const Vec3i b = dec.block_of(rank);
  const Vec3f spacing = {1.0f / (n * dec.blocks.x), 1.0f / (n * dec.blocks.y),
                         1.0f / (n * dec.blocks.z)};
  const Vec3f origin = {b.x * n * spacing.x, b.y * n * spacing.y, b.z * n * spacing.z};
  mesh::StructuredGrid grid(n, n, n, origin, spacing);
  for (int k = 0; k <= n; ++k)
    for (int j = 0; j <= n; ++j)
      for (int i = 0; i <= n; ++i)
        grid.scalars()[grid.point_index(i, j, k)] = global_field(grid.point(i, j, k));
  return grid;
}

mesh::StructuredGrid full_grid(int ranks, int n) {
  const sims::Decomposition dec = sims::Decomposition::create(ranks);
  const int nx = n * dec.blocks.x, ny = n * dec.blocks.y, nz = n * dec.blocks.z;
  mesh::StructuredGrid grid(nx, ny, nz, {0, 0, 0},
                            {1.0f / nx, 1.0f / ny, 1.0f / nz});
  for (int k = 0; k <= nz; ++k)
    for (int j = 0; j <= ny; ++j)
      for (int i = 0; i <= nx; ++i)
        grid.scalars()[grid.point_index(i, j, k)] = global_field(grid.point(i, j, k));
  return grid;
}

Camera domain_camera(int edge) {
  AABB unit;
  unit.expand({0, 0, 0});
  unit.expand({1, 1, 1});
  return Camera::framing(unit, edge, edge, 0.8f);
}

TEST(DistributedRendering, SurfaceCompositeMatchesSingleDomainDepth) {
  // Ray trace 8 blocks separately, z-composite, and compare the depth plane
  // against a single full-domain render: the visible outer shell is the
  // same geometry either way.
  const int ranks = 8, n = 12, edge = 96;
  const Camera cam = domain_camera(edge);
  const ColorTable colors = ColorTable::cool_warm();
  dpp::Device dev = dpp::Device::host();

  std::vector<comm::RankImage> images(ranks);
  for (int r = 0; r < ranks; ++r) {
    const mesh::StructuredGrid grid = rank_grid(r, ranks, n);
    const mesh::TriMesh surface = mesh::external_faces(grid);
    render::RayTracer rt(surface, dev);
    rt.render(cam, colors, images[static_cast<std::size_t>(r)].image);
    images[static_cast<std::size_t>(r)].view_depth =
        length(grid.bounds().center() - cam.position);
  }
  comm::Comm comm(ranks);
  const comm::CompositeResult composed = comm::composite(
      comm, images, comm::CompositeMode::kSurface, comm::CompositeAlgorithm::kBinarySwap);

  const mesh::StructuredGrid whole = full_grid(ranks, n);
  const mesh::TriMesh whole_surface = mesh::external_faces(whole);
  render::RayTracer rt(whole_surface, dev);
  render::Image reference;
  rt.render(cam, colors, reference);

  // Depth agreement on pixels both consider hit.
  std::size_t both = 0, mismatched = 0;
  for (std::size_t p = 0; p < reference.pixel_count(); ++p) {
    const float d1 = composed.image.depths()[p];
    const float d2 = reference.depths()[p];
    const bool h1 = d1 != render::kFarDepth;
    const bool h2 = d2 != render::kFarDepth;
    if (h1 != h2) {
      ++mismatched;
      continue;
    }
    if (!h1) continue;
    ++both;
    EXPECT_NEAR(d1, d2, 0.02f) << "pixel " << p;
  }
  EXPECT_GT(both, 1000u);
  // Silhouette differences only at block seams / edge pixels.
  EXPECT_LT(mismatched, reference.pixel_count() / 100);
}

TEST(DistributedRendering, VolumeCompositeApproximatesSingleDomain) {
  // Volume rendering is not exactly decomposable (sampling phase differs at
  // block boundaries), but the composited image must closely match a
  // single-domain render of the same field.
  const int ranks = 8, n = 12, edge = 80;
  const Camera cam = domain_camera(edge);
  const TransferFunction tf(ColorTable::cool_warm(), 0.05f, 0.3f);
  dpp::Device dev = dpp::Device::host();
  render::VolumeRenderOptions opt;
  opt.samples = 240;
  opt.early_termination = false;

  std::vector<comm::RankImage> images(ranks);
  for (int r = 0; r < ranks; ++r) {
    const mesh::StructuredGrid grid = rank_grid(r, ranks, n);
    render::StructuredVolumeRenderer vr(grid, dev);
    render::VolumeRenderOptions ropt = opt;
    ropt.samples = opt.samples / 2;  // half the span -> half the samples
    vr.render(cam, tf, images[static_cast<std::size_t>(r)].image, ropt);
    images[static_cast<std::size_t>(r)].view_depth =
        length(grid.bounds().center() - cam.position);
  }
  comm::Comm comm(ranks);
  const comm::CompositeResult composed = comm::composite(
      comm, images, comm::CompositeMode::kVolume, comm::CompositeAlgorithm::kRadixK);

  const mesh::StructuredGrid whole = full_grid(ranks, n);
  render::StructuredVolumeRenderer vr(whole, dev);
  render::Image reference;
  vr.render(cam, tf, reference, opt);

  EXPECT_LT(composed.image.rms_difference(reference), 0.06);
}

TEST(DistributedRendering, StrawmanRanksCompositeEndToEnd) {
  // Four Strawman instances (one per virtual rank) publish their block of
  // the CloverLeaf proxy; their images composite into a full picture.
  const int ranks = 4;
  std::vector<comm::RankImage> images(ranks);
  std::vector<sims::CloverLeaf> sims;
  sims.reserve(ranks);
  std::vector<conduit::Node> nodes(ranks);
  double max_rank_active = 0.0;
  for (int r = 0; r < ranks; ++r) {
    sims.emplace_back(10, 10, 10, r, ranks);
    sims.back().step();
    sims.back().describe(nodes[static_cast<std::size_t>(r)]);

    insitu::Strawman strawman;
    conduit::Node options;
    options["output_dir"] = "/tmp";
    strawman.open(options);
    strawman.publish(nodes[static_cast<std::size_t>(r)]);
    conduit::Node actions;
    conduit::Node& add = actions.append();
    add["action"] = "AddPlot";
    add["var"] = "energy";
    actions.append()["action"] = "DrawPlots";
    conduit::Node& save = actions.append();
    save["action"] = "SaveImage";
    save["fileName"] = "isr_rank" + std::to_string(r);
    save["format"] = "ppm";
    save["width"] = 64;
    save["height"] = 64;
    strawman.execute(actions);
    images[static_cast<std::size_t>(r)].image = strawman.last_image();
    images[static_cast<std::size_t>(r)].view_depth = strawman.last_view_depth();
    max_rank_active = std::max(
        max_rank_active, static_cast<double>(strawman.last_image().active_pixel_count()));
    strawman.close();
  }
  comm::Comm comm(ranks);
  const comm::CompositeResult composed = comm::composite(
      comm, images, comm::CompositeMode::kSurface, comm::CompositeAlgorithm::kDirectSend);
  // The composite covers at least as much of the screen as any single rank.
  EXPECT_GE(static_cast<double>(composed.image.active_pixel_count()), max_rank_active);
  EXPECT_GT(composed.simulated_seconds, 0.0);
}

class SceneAgreement : public ::testing::TestWithParam<std::string> {};
INSTANTIATE_TEST_SUITE_P(Scenes, SceneAgreement,
                         ::testing::Values("RM 350K", "LT 350K", "Dragon", "Conference"));

TEST_P(SceneAgreement, RayTracerAndRasterizerAgreeEverywhere) {
  const mesh::TriMesh scene = mesh::make_scene(GetParam(), 0.15f);
  const Camera cam = Camera::framing(scene.bounds(), 96, 96);
  const ColorTable colors = ColorTable::cool_warm();
  dpp::Device dev = dpp::Device::host();

  render::RayTracer rt(scene, dev);
  render::Rasterizer rast(scene, dev);
  render::Image a, b;
  const render::RenderStats sa = rt.render(cam, colors, a);
  const render::RenderStats sb = rast.render(cam, colors, b);
  EXPECT_NEAR(sa.active_pixels, sb.active_pixels,
              std::max(32.0, 0.03 * sa.active_pixels))
      << GetParam();
  EXPECT_LT(a.rms_difference(b), 0.08) << GetParam();
}

}  // namespace
}  // namespace isr
