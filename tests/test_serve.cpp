// Tests for the serving layer: registry fingerprinting and cache-hit
// behavior, the typed advisor API, batch-vs-serial response identity at
// any thread count, and the JSON-lines front-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "serve/advisor.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"

namespace isr::serve {
namespace {

// A calibration corpus small enough that a registry fit costs well under a
// second: 1 sim x 2 tasks x 3 samples x 2 archs x 3 renderers = 36 obs.
model::StudyConfig tiny_calibration() {
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

ServiceConfig tiny_service_config(int threads = 0) {
  ServiceConfig cfg;
  cfg.calibration = tiny_calibration();
  cfg.threads = threads;
  return cfg;
}

// One service and one registry shared by the suite, so the calibration
// corpus is fitted once for all the serving tests (the registry's own
// point, exercised for real in the dedicated registry tests below).
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = std::make_shared<ModelRegistry>();
    service_ = new AdvisorService(tiny_service_config(), registry_);
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
    registry_.reset();
  }
  static AdvisorService* service_;
  static std::shared_ptr<ModelRegistry> registry_;
};

AdvisorService* ServeFixture::service_ = nullptr;
std::shared_ptr<ModelRegistry> ServeFixture::registry_;

// --- Registry ---------------------------------------------------------------

TEST(ModelRegistryTest, FitsOncePerFingerprintAndCaches) {
  ModelRegistry registry;
  EXPECT_EQ(registry.fits(), 0);
  const FittedModels& first = registry.models_for(tiny_calibration());
  EXPECT_EQ(registry.fits(), 1);
  EXPECT_EQ(first.corpus_size, 36u);
  EXPECT_EQ(first.entries.size(), 6u);  // 2 archs x 3 renderers

  // Same config again: cache hit, same bundle, no refit.
  const FittedModels& again = registry.models_for(tiny_calibration());
  EXPECT_EQ(registry.fits(), 1);
  EXPECT_EQ(&first, &again);

  // A corpus-shaping change is a different fingerprint and a refit.
  model::StudyConfig changed = tiny_calibration();
  changed.seed = 124;
  registry.models_for(changed);
  EXPECT_EQ(registry.fits(), 2);
}

TEST(ModelRegistryTest, FingerprintCoversCorpusShapeButNotThreads) {
  const model::StudyConfig base = tiny_calibration();
  const std::uint64_t h = ModelRegistry::fingerprint(base);

  // run_study guarantees thread-count invariance of the corpus, so a config
  // differing only in worker count must hit the same cache entry.
  model::StudyConfig threaded = base;
  threaded.threads = 7;
  EXPECT_EQ(ModelRegistry::fingerprint(threaded), h);

  model::StudyConfig other = base;
  other.min_image = base.min_image + 1;
  EXPECT_NE(ModelRegistry::fingerprint(other), h);
  other = base;
  other.sims = {"cloverleaf", "lulesh"};
  EXPECT_NE(ModelRegistry::fingerprint(other), h);
  other = base;
  other.renderers = {model::RendererKind::kRayTrace};
  EXPECT_NE(ModelRegistry::fingerprint(other), h);
  other = base;
  other.tasks = {1, 4};
  EXPECT_NE(ModelRegistry::fingerprint(other), h);
}

TEST(ModelRegistryTest, FindReturnsNullForUnfittedCombination) {
  ModelRegistry registry;
  model::StudyConfig cfg = tiny_calibration();
  cfg.archs = {"CPU1"};
  cfg.renderers = {model::RendererKind::kRayTrace};
  const FittedModels& fitted = registry.models_for(cfg);
  EXPECT_NE(fitted.find("CPU1", model::RendererKind::kRayTrace), nullptr);
  EXPECT_EQ(fitted.find("GPU1", model::RendererKind::kRayTrace), nullptr);
  EXPECT_EQ(fitted.find("CPU1", model::RendererKind::kVolume), nullptr);
}

// --- Typed advisor API ------------------------------------------------------

TEST_F(ServeFixture, AnswersAFeasibilityQuery) {
  AdvisorRequest req;
  req.arch = "CPU1";
  req.renderer = model::RendererKind::kRayTrace;
  req.n_per_task = 100;
  req.tasks = 8;
  req.image_edge = 512;
  req.budget_seconds = 60.0;
  const AdvisorResponse resp = service_->serve_one(req);
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_GT(resp.frame_seconds, 0.0);
  EXPECT_GT(resp.build_seconds, 0.0);  // ray tracing pays a BVH build
  EXPECT_GT(resp.images_in_budget, 0);
  ASSERT_TRUE(resp.has_verdict);
  EXPECT_GT(resp.rt_seconds, 0.0);
  EXPECT_GT(resp.rast_seconds, 0.0);
  EXPECT_NEAR(resp.ratio, resp.rast_seconds / resp.rt_seconds, 1e-12);
  EXPECT_EQ(resp.prefer_ray_tracing, resp.ratio > 1.0);
}

TEST_F(ServeFixture, MoreBudgetNeverMeansFewerImages) {
  AdvisorRequest req;
  req.n_per_task = 100;
  req.tasks = 8;
  req.image_edge = 512;
  long previous = -1;
  for (const double budget : {0.0, 10.0, 60.0, 600.0}) {
    req.budget_seconds = budget;
    const AdvisorResponse resp = service_->serve_one(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_GE(resp.images_in_budget, previous) << "budget " << budget;
    previous = resp.images_in_budget;
  }
}

TEST_F(ServeFixture, UnknownArchAndInvalidValuesAreLoudErrors) {
  AdvisorRequest req;
  req.arch = "TPU9";
  AdvisorResponse resp = service_->serve_one(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_NE(resp.error.find("TPU9"), std::string::npos);
  EXPECT_EQ(resp.images_in_budget, 0);

  req = AdvisorRequest{};
  req.tasks = 0;
  resp = service_->serve_one(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_NE(resp.error.find("tasks"), std::string::npos);

  req = AdvisorRequest{};
  req.budget_seconds = -1.0;
  EXPECT_FALSE(service_->serve_one(req).ok());

  // An absurd but non-negative budget is answerable: the count saturates
  // (model/feasibility.*) rather than overflowing to a negative.
  req = AdvisorRequest{};
  req.budget_seconds = 1e30;
  const AdvisorResponse huge = service_->serve_one(req);
  ASSERT_TRUE(huge.ok()) << huge.error;
  EXPECT_EQ(huge.images_in_budget, std::numeric_limits<long>::max());
}

TEST_F(ServeFixture, BatchMatchesSerialBitForBitAtAnyThreadCount) {
  // A mixed batch: every arch x renderer, several sizes, one error slot.
  std::vector<AdvisorRequest> requests;
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const model::RendererKind kind :
         {model::RendererKind::kRayTrace, model::RendererKind::kRasterize,
          model::RendererKind::kVolume}) {
      for (const int edge : {256, 1024}) {
        AdvisorRequest req;
        req.arch = arch;
        req.renderer = kind;
        req.image_edge = edge;
        requests.push_back(req);
      }
    }
  }
  AdvisorRequest bad;
  bad.arch = "nope";
  requests.push_back(bad);

  // Serial reference: serve_one in a loop on the shared (fitted) service.
  std::vector<AdvisorResponse> serial;
  for (const AdvisorRequest& req : requests) serial.push_back(service_->serve_one(req));

  // Batched at several thread counts, answering from the fixture's
  // registry: the same fitted models, no refits, only the fan-out varies.
  for (const int threads : {1, 3, 4}) {
    AdvisorService service(tiny_service_config(threads), registry_);
    const std::vector<AdvisorResponse> batched = service.serve_batch(requests);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(responses_identical(serial[i], batched[i])) << "slot " << i;
      EXPECT_EQ(to_jsonl(serial[i]), to_jsonl(batched[i])) << "slot " << i;
    }
  }
}

TEST_F(ServeFixture, AnswerBatchMatchesAnswerRequestAtEveryBatchSize) {
  // The redesign's core contract: answer_batch is a pure function of
  // (fitted models, constants, request[i]) — batch composition and chunk
  // boundaries cannot change a byte. Reference = the single-item wrapper.
  const FittedModels& fitted = registry_->models_for(tiny_calibration());
  const model::MappingConstants& constants = service_->config().constants;

  std::vector<AdvisorRequest> requests;
  for (const std::string arch : {"CPU1", "GPU1", "TPU9"}) {
    for (const model::RendererKind kind :
         {model::RendererKind::kRayTrace, model::RendererKind::kRasterize,
          model::RendererKind::kVolume}) {
      for (const int edge : {128, 512, 2048}) {
        for (const double budget : {0.0, 5.0, 300.0}) {
          AdvisorRequest req;
          req.arch = arch;
          req.renderer = kind;
          req.image_edge = edge;
          req.budget_seconds = budget;
          req.frames = edge / 2;
          requests.push_back(req);
        }
      }
    }
  }
  // Invalid slots interleaved mid-batch: validation errors must stay
  // in-slot no matter which group their neighbors land in.
  AdvisorRequest bad;
  bad.tasks = 0;
  requests.insert(requests.begin() + 5, bad);
  bad = AdvisorRequest{};
  bad.budget_seconds = -2.0;
  requests.push_back(bad);

  std::vector<AdvisorResponse> reference;
  for (const AdvisorRequest& req : requests)
    reference.push_back(answer_request(fitted, constants, req));

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  requests.size()}) {
    // Contiguous overload, one scratch reused across every chunk.
    EvalScratch scratch;
    std::vector<AdvisorResponse> batched(requests.size());
    for (std::size_t begin = 0; begin < requests.size(); begin += chunk) {
      const std::size_t n = std::min(chunk, requests.size() - begin);
      answer_batch(fitted, constants, requests.data() + begin, n,
                   batched.data() + begin, scratch);
    }
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(responses_identical(reference[i], batched[i]))
          << "chunk " << chunk << " slot " << i;
      EXPECT_EQ(to_jsonl(reference[i]), to_jsonl(batched[i]))
          << "chunk " << chunk << " slot " << i;
    }

    // Gather form over the same chunking: pointer indirection is the
    // cluster shard's path and must agree byte for byte too.
    EvalScratch gather_scratch;
    std::vector<AdvisorResponse> gathered(requests.size());
    std::vector<const AdvisorRequest*> rp(requests.size());
    std::vector<AdvisorResponse*> sp(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      rp[i] = &requests[i];
      sp[i] = &gathered[i];
    }
    for (std::size_t begin = 0; begin < requests.size(); begin += chunk) {
      const std::size_t n = std::min(chunk, requests.size() - begin);
      answer_batch(fitted, constants, rp.data() + begin, n, sp.data() + begin,
                   gather_scratch);
    }
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_TRUE(responses_identical(reference[i], gathered[i]))
          << "gather chunk " << chunk << " slot " << i;
  }
}

TEST_F(ServeFixture, EvalScratchArenaStopsGrowingAfterWarmup) {
  // The zero-allocation steady state: one warmup batch sizes the arena;
  // every identical batch after that bumps pointers inside the same
  // chunks. Capacity and chunk count must be flat after warmup, and each
  // batch must start from a rewound arena (same bytes used every time).
  const FittedModels& fitted = registry_->models_for(tiny_calibration());
  const model::MappingConstants& constants = service_->config().constants;

  std::vector<AdvisorRequest> requests(64);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].arch = i % 2 ? "CPU1" : "GPU1";
    requests[i].renderer = static_cast<model::RendererKind>(i % 3);
    requests[i].image_edge = 128 << (i % 4);
  }
  std::vector<AdvisorResponse> responses(requests.size());

  EvalScratch scratch;
  answer_batch(fitted, constants, requests.data(), requests.size(),
               responses.data(), scratch);
  const std::size_t warm_capacity = scratch.arena.capacity();
  const std::size_t warm_chunks = scratch.arena.chunk_count();
  const std::size_t warm_used = scratch.arena.used();
  EXPECT_GT(warm_capacity, 0u);
  EXPECT_GT(warm_used, 0u);

  for (int round = 0; round < 16; ++round) {
    answer_batch(fitted, constants, requests.data(), requests.size(),
                 responses.data(), scratch);
    EXPECT_EQ(scratch.arena.capacity(), warm_capacity) << "round " << round;
    EXPECT_EQ(scratch.arena.chunk_count(), warm_chunks) << "round " << round;
    // Rewound between batches: a same-shaped batch hands out the same
    // bytes, not an accumulating total.
    EXPECT_EQ(scratch.arena.used(), warm_used) << "round " << round;
  }

  // Smaller batches after warmup must fit inside the warmed capacity too.
  answer_batch(fitted, constants, requests.data(), 7, responses.data(), scratch);
  EXPECT_EQ(scratch.arena.capacity(), warm_capacity);
  EXPECT_LT(scratch.arena.used(), warm_used);
}

TEST(AdvisorServiceTest, SprBaseFollowsCalibrationSamplingDensity) {
  // Construction is lazy (no fit), so these are cheap. The default
  // spr_base sentinel derives from vr_samples so an overridden calibration
  // density keeps the §5.8 SPR mapping consistent with the corpus.
  AdvisorService derived(tiny_service_config());  // vr_samples = 120
  EXPECT_DOUBLE_EQ(derived.config().constants.spr_base, 0.93 * 120);

  ServiceConfig pinned = tiny_service_config();
  pinned.constants.spr_base = 42.0;  // explicit value wins
  AdvisorService pinned_service(std::move(pinned));
  EXPECT_DOUBLE_EQ(pinned_service.config().constants.spr_base, 42.0);
}

TEST(AdvisorServiceTest, EmptyBatchDoesNotTriggerCalibration) {
  AdvisorService service(tiny_service_config());
  EXPECT_TRUE(service.serve_batch({}).empty());
  EXPECT_EQ(service.registry().fits(), 0);
}

TEST(AdvisorServiceTest, SharedRegistryFitsOnlyOnce) {
  const auto registry = std::make_shared<ModelRegistry>();
  AdvisorService serial(tiny_service_config(1), registry);
  AdvisorService parallel(tiny_service_config(4), registry);
  serial.serve_one(AdvisorRequest{});
  parallel.serve_one(AdvisorRequest{});
  EXPECT_EQ(registry->fits(), 1);
}

// --- Wire format ------------------------------------------------------------

TEST(JsonlParse, AcceptsFullPartialAndEmptyObjects) {
  AdvisorRequest req;
  std::string error;
  ASSERT_TRUE(parse_request_line(
      R"({"corpus":"titan","arch":"GPU1","renderer":"volume","n_per_task":80,"tasks":4,)"
      R"("image_edge":256,"budget_seconds":12.5,"frames":7})",
      req, error))
      << error;
  EXPECT_EQ(req.corpus, "titan");
  EXPECT_EQ(req.arch, "GPU1");
  EXPECT_EQ(req.renderer, model::RendererKind::kVolume);
  EXPECT_EQ(req.n_per_task, 80);
  EXPECT_EQ(req.tasks, 4);
  EXPECT_EQ(req.image_edge, 256);
  EXPECT_DOUBLE_EQ(req.budget_seconds, 12.5);
  EXPECT_EQ(req.frames, 7);

  // Unset keys keep the schema defaults — an absent corpus selects the
  // server's default corpus (empty string).
  req = AdvisorRequest{};
  ASSERT_TRUE(parse_request_line(R"({"renderer":"rasterize"})", req, error)) << error;
  EXPECT_EQ(req.renderer, model::RendererKind::kRasterize);
  EXPECT_EQ(req.corpus, "");
  EXPECT_EQ(req.arch, "CPU1");
  EXPECT_EQ(req.tasks, 32);

  ASSERT_TRUE(parse_request_line("{}", req, error)) << error;
  ASSERT_TRUE(parse_request_line("  { \"tasks\" : 16 }  ", req, error)) << error;
  EXPECT_EQ(req.tasks, 16);
}

TEST(JsonlParse, RejectsMalformedInputWithReasons) {
  AdvisorRequest req;
  const AdvisorRequest defaults;
  std::string error;
  EXPECT_FALSE(parse_request_line("not json", req, error));
  EXPECT_FALSE(parse_request_line(R"({"unknown_key":1})", req, error));
  EXPECT_NE(error.find("unknown_key"), std::string::npos);
  EXPECT_FALSE(parse_request_line(R"({"tasks":"eight"})", req, error));
  EXPECT_FALSE(parse_request_line(R"({"tasks":4.5})", req, error));
  EXPECT_NE(error.find("integer"), std::string::npos);
  EXPECT_FALSE(parse_request_line(R"({"renderer":"opengl"})", req, error));
  EXPECT_FALSE(parse_request_line(R"({"tasks":8,"tasks":64})", req, error));
  EXPECT_NE(error.find("duplicate key"), std::string::npos);
  EXPECT_FALSE(parse_request_line(R"({"arch":"CPU1")", req, error));  // no closing brace
  EXPECT_FALSE(parse_request_line(R"({"arch":"CPU1"} trailing)", req, error));
  // A failed parse must not half-mutate the request.
  EXPECT_EQ(req.arch, defaults.arch);
  EXPECT_EQ(req.tasks, defaults.tasks);
}

TEST(JsonlService, ServesBatchesInOrderWithErrorSlots) {
  std::istringstream in(
      "{\"arch\":\"CPU1\",\"renderer\":\"raytrace\",\"image_edge\":256}\n"
      "garbage\n"
      "{\"arch\":\"GPU1\",\"renderer\":\"volume\",\"n_per_task\":24,\"tasks\":2}\n"
      "\n"
      "{\"renderer\":\"rasterize\"}\n");
  std::ostringstream out;
  AdvisorService service(tiny_service_config());
  const std::size_t answered = run_jsonl(in, out, service);
  EXPECT_EQ(answered, 4u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[0].find("\"images_in_budget\":"), std::string::npos);
  EXPECT_NE(responses[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(responses[1].find("parse error"), std::string::npos);
  EXPECT_NE(responses[2].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[3].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[3].find("\"recommendation\":\""), std::string::npos);
}

TEST(JsonlService, ResponseLinesMatchServeOneByteForByte) {
  AdvisorService service(tiny_service_config());
  AdvisorRequest req;
  req.arch = "GPU1";
  req.renderer = model::RendererKind::kRasterize;
  req.image_edge = 640;
  const std::string expected = to_jsonl(service.serve_one(req));

  std::istringstream in(R"({"arch":"GPU1","renderer":"rasterize","image_edge":640})");
  std::ostringstream out;
  run_jsonl(in, out, service);
  EXPECT_EQ(out.str(), expected + "\n");
}

TEST(JsonlFormat, ErrorResponsesEscapeJsonMetacharacters) {
  AdvisorResponse r;
  r.status = AdvisorResponse::Status::kError;
  r.error = "bad \"value\"\nwith\\slash";
  EXPECT_EQ(to_jsonl(r),
            "{\"ok\":false,\"error\":\"bad \\\"value\\\"\\u000awith\\\\slash\"}");
}

TEST(JsonlFormat, DegradedMarkerPrecedesTheErrorAndIsPartOfIdentity) {
  // The fault-tolerance wire contract (src/cluster/): a response the
  // cluster could not answer within its retry budget carries an explicit
  // "degraded":true marker clients can branch on without parsing the text.
  AdvisorResponse r;
  r.status = AdvisorResponse::Status::kDegraded;
  r.error = "degraded: retry budget exhausted after 3 attempts";
  EXPECT_EQ(to_jsonl(r),
            "{\"ok\":false,\"degraded\":true,"
            "\"error\":\"degraded: retry budget exhausted after 3 attempts\"}");

  // An ordinary error with the same text is a DIFFERENT response.
  AdvisorResponse plain;
  plain.status = AdvisorResponse::Status::kError;
  plain.error = r.error;
  EXPECT_FALSE(responses_identical(r, plain));
  EXPECT_TRUE(responses_identical(r, r));
}

TEST(JsonlFormat, StatusRoundTripsThroughWireLines) {
  // The typed Status must survive serialization: to_jsonl emits the
  // marker key for each status and response_line_status reads it back, so
  // cluster metrics classifying replayed wire lines agree with the enum
  // the server held. (The wire bytes themselves are the pre-enum format.)
  AdvisorResponse ok;
  ok.status = AdvisorResponse::Status::kOk;
  ok.frame_seconds = 0.25;
  EXPECT_EQ(response_line_status(to_jsonl(ok)), AdvisorResponse::Status::kOk);

  AdvisorResponse shed;
  shed.status = AdvisorResponse::Status::kShed;
  shed.error = "shed: estimated completion 12ms exceeds deadline 5ms";
  const std::string shed_line = to_jsonl(shed);
  EXPECT_EQ(shed_line.find("{\"ok\":false,\"shed\":true,"), 0u) << shed_line;
  EXPECT_EQ(response_line_status(shed_line), AdvisorResponse::Status::kShed);

  AdvisorResponse degraded;
  degraded.status = AdvisorResponse::Status::kDegraded;
  degraded.error = "degraded: retry budget exhausted";
  const std::string degraded_line = to_jsonl(degraded);
  EXPECT_EQ(degraded_line.find("{\"ok\":false,\"degraded\":true,"), 0u) << degraded_line;
  EXPECT_EQ(response_line_status(degraded_line), AdvisorResponse::Status::kDegraded);

  AdvisorResponse error;
  error.status = AdvisorResponse::Status::kError;
  error.error = "unknown arch";
  EXPECT_EQ(response_line_status(to_jsonl(error)), AdvisorResponse::Status::kError);

  // status_name gives metrics one spelling per status.
  EXPECT_STREQ(status_name(AdvisorResponse::Status::kOk), "ok");
  EXPECT_STREQ(status_name(AdvisorResponse::Status::kShed), "shed");
  EXPECT_STREQ(status_name(AdvisorResponse::Status::kDegraded), "degraded");
  EXPECT_STREQ(status_name(AdvisorResponse::Status::kError), "error");
}

TEST(JsonlFormat, AppendFormReusesTheCallerBuffer) {
  // The zero-copy serializer appends — never clears — so a flush loop can
  // build one wire buffer across a whole batch, and a warmed buffer
  // serializes without reallocating.
  AdvisorResponse r;
  r.status = AdvisorResponse::Status::kError;
  r.error = "e";
  std::string wire = "prefix\n";
  to_jsonl(r, wire);
  EXPECT_EQ(wire, "prefix\n{\"ok\":false,\"error\":\"e\"}");
  EXPECT_EQ(wire.substr(7), to_jsonl(r));

  wire.clear();
  wire.reserve(4096);
  const std::size_t warm_capacity = wire.capacity();
  for (int i = 0; i < 8; ++i) {
    wire.clear();
    to_jsonl(r, wire);
    wire += '\n';
  }
  EXPECT_EQ(wire.capacity(), warm_capacity);
}

// --- Non-finite budgets (every entry point) ---------------------------------

TEST(JsonlParse, NonFiniteBudgetSpellingsAreRejectedWithOneLineReasons) {
  // Every spelling a client could smuggle a non-finite budget in as — NaN,
  // infinities, and overflow-to-inf exponents — must die in the parser with
  // a reason naming the key, never reach the advisor as a double.
  AdvisorRequest req;
  std::string error;
  for (const char* line :
       {R"({"budget_seconds":nan})", R"({"budget_seconds":NaN})",
        R"({"budget_seconds":inf})", R"({"budget_seconds":Infinity})",
        R"({"budget_seconds":-Infinity})", R"({"budget_seconds":1e999})"}) {
    EXPECT_FALSE(parse_request_line(line, req, error)) << line;
    EXPECT_NE(error.find("budget_seconds"), std::string::npos) << line << ": " << error;
    EXPECT_NE(error.find("must be finite"), std::string::npos) << line << ": " << error;
  }
}

TEST_F(ServeFixture, NonFiniteBudgetsAreRejectedBeforeEvaluation) {
  // The C++ API can be handed values the wire parser never admits; the
  // advisor must reject them before the float->long images-in-budget cast
  // (+inf passes ">= 0" and the cast would be UB).
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    AdvisorRequest req;
    req.budget_seconds = bad;
    const AdvisorResponse resp = service_->serve_one(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("budget_seconds must be finite"), std::string::npos)
        << resp.error;
  }
}

TEST(JsonlService, NonFiniteBudgetGetsAnInSlotErrorResponse) {
  // End to end through the batch front-end: the poisoned line earns an
  // in-slot error while its neighbors are answered normally.
  std::istringstream in(
      "{\"renderer\":\"raytrace\",\"image_edge\":128}\n"
      "{\"budget_seconds\":Infinity}\n"
      "{\"renderer\":\"rasterize\",\"image_edge\":128}\n");
  std::ostringstream out;
  AdvisorService service(tiny_service_config());
  EXPECT_EQ(run_jsonl(in, out, service), 3u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(responses[1].find("must be finite"), std::string::npos);
  EXPECT_NE(responses[2].find("\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace isr::serve
