// Tests for the sharded serving cluster: router partition stability,
// LRU response-cache behavior, queue coalescing (size / deadline / close
// flushes), and — the load-bearing contract — response byte-identity
// across shard counts, thread counts, and cache states, with exactly one
// registry fit per distinct calibration corpus.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cache.hpp"
#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "core/batch_queue.hpp"
#include "serve/jsonl.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {
namespace {

using serve::AdvisorRequest;
using serve::AdvisorResponse;

// The same fast calibration corpus test_serve uses: 36 observations, fits
// well under a second.
model::StudyConfig tiny_calibration() {
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

ClusterConfig tiny_cluster_config(int shards, int threads, std::size_t cache_entries) {
  ClusterConfig cfg;
  cfg.service.calibration = tiny_calibration();
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.cache_entries = cache_entries;
  cfg.batch_size = 4;  // small, so multi-batch coalescing is exercised
  return cfg;
}

// A mixed batch: every arch x renderer x two sizes, plus an error slot —
// the same shape test_serve's identity test uses.
std::vector<AdvisorRequest> mixed_requests() {
  std::vector<AdvisorRequest> requests;
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const model::RendererKind kind :
         {model::RendererKind::kRayTrace, model::RendererKind::kRasterize,
          model::RendererKind::kVolume}) {
      for (const int edge : {256, 1024}) {
        AdvisorRequest req;
        req.arch = arch;
        req.renderer = kind;
        req.image_edge = edge;
        requests.push_back(req);
      }
    }
  }
  AdvisorRequest bad;
  bad.arch = "nope";
  requests.push_back(bad);
  return requests;
}

AdvisorResponse ok_response(double frame_seconds) {
  AdvisorResponse r;
  r.status = AdvisorResponse::Status::kOk;
  r.frame_seconds = frame_seconds;
  return r;
}

// --- Router -----------------------------------------------------------------

TEST(RouterTest, SameKeySameShardAcrossInstances) {
  const std::uint64_t fp = serve::ModelRegistry::fingerprint(tiny_calibration());
  const Router a(4), b(4);
  for (int i = 0; i < 200; ++i) {
    const std::string arch = "arch" + std::to_string(i);
    EXPECT_EQ(a.shard_for(fp, arch), b.shard_for(fp, arch)) << arch;
    EXPECT_GE(a.shard_for(fp, arch), 0);
    EXPECT_LT(a.shard_for(fp, arch), 4);
  }
}

TEST(RouterTest, SpreadsKeysAcrossShards) {
  const Router router(4);
  std::set<int> used;
  for (int i = 0; i < 200; ++i)
    used.insert(router.shard_for(42, "arch" + std::to_string(i)));
  EXPECT_EQ(used.size(), 4u);  // 200 keys must reach every one of 4 shards
}

TEST(RouterTest, ConsistentHashMovesFewKeysOnResize) {
  // Adding a fifth shard should move roughly 1/5 of the key space; a
  // modulo router would move ~4/5. Assert we are on the consistent side.
  const Router four(4), five(5);
  int moved = 0;
  const int keys = 500;
  for (int i = 0; i < keys; ++i) {
    const std::string arch = "arch" + std::to_string(i);
    if (four.shard_for(42, arch) != five.shard_for(42, arch)) ++moved;
  }
  EXPECT_GT(moved, 0);                // resize must hand the new shard work
  EXPECT_LT(moved, keys / 2);         // ...but far less than a modulo remap
}

TEST(RouterTest, RoutingDependsOnCorpusFingerprint) {
  // One ring serves every resident corpus: the fingerprint is part of the
  // key, so the same arch under two corpora spreads across shards.
  const Router router(8);
  int differ = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string arch = "arch" + std::to_string(i);
    if (router.shard_for(1, arch) != router.shard_for(2, arch)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

// --- Hot-key rebalancing ----------------------------------------------------

TEST(RouterTest, ColdKeysRouteToTheirHomeShard) {
  // Balanced traffic over many keys: nothing crosses the imbalance
  // threshold, so route() is exactly the pure lookup.
  Router router(4);
  for (int pass = 0; pass < 5; ++pass)
    for (int i = 0; i < 40; ++i) {
      const std::string arch = "arch" + std::to_string(i);
      EXPECT_EQ(router.route(7, arch), router.shard_for(7, arch)) << arch;
    }
  EXPECT_EQ(router.rebalanced(), 0);
  EXPECT_EQ(router.hot_keys(), 0);
}

TEST(RouterTest, HotKeySpreadsAcrossAllShards) {
  Router router(4);
  std::set<int> used;
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 400; ++i) {
    const int shard = router.route(7, "hot");
    used.insert(shard);
    per_shard[static_cast<std::size_t>(shard)] += 1;
  }
  // The key turns hot once its load clears the floor, then round-robins
  // over the rendezvous order — every shard shares the load about equally.
  // rebalanced() counts only the picks that moved OFF the home shard
  // (~3/4 of the ~368 post-floor routes here).
  EXPECT_EQ(used.size(), 4u);
  EXPECT_GT(router.rebalanced(), 200);
  EXPECT_LT(router.rebalanced(), 350);
  EXPECT_EQ(router.hot_keys(), 1);
  for (const int count : per_shard) EXPECT_GT(count, 50);
  // The pure lookup is untouched by load: shard_for stays the home shard.
  const Router fresh(4);
  EXPECT_EQ(router.shard_for(7, "hot"), fresh.shard_for(7, "hot"));
}

TEST(RouterTest, RebalanceOffPinsEveryKey) {
  RouterOptions options;
  options.rebalance = false;
  Router router(4, options);
  for (int i = 0; i < 400; ++i)
    EXPECT_EQ(router.route(7, "hot"), router.shard_for(7, "hot"));
  EXPECT_EQ(router.rebalanced(), 0);
}

TEST(RouterTest, DecayReturnsACooledKeyHome) {
  RouterOptions options;
  options.decay_window = 64;
  options.min_hot_load = 8.0;
  Router router(4, options);
  for (int i = 0; i < 64; ++i) router.route(7, "hot");  // hot by now
  EXPECT_GT(router.rebalanced(), 0);
  const long rebalanced_at_peak = router.rebalanced();
  // A long stretch of balanced traffic decays the old hot key to noise...
  for (int pass = 0; pass < 10; ++pass)
    for (int i = 0; i < 64; ++i) router.route(7, "arch" + std::to_string(i));
  // ...so its next request routes home again.
  EXPECT_EQ(router.route(7, "hot"), router.shard_for(7, "hot"));
  EXPECT_EQ(router.rebalanced(), rebalanced_at_peak);
}

// --- Canonical request key --------------------------------------------------

TEST(CanonicalKeyTest, DistinguishesEveryField) {
  const AdvisorRequest base;
  const std::string key = canonical_request_key(base);
  AdvisorRequest r = base;
  r.arch = "GPU1";
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.renderer = model::RendererKind::kVolume;
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.n_per_task += 1;
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.tasks += 1;
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.image_edge += 1;
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.budget_seconds += 1e-9;  // exact bit pattern, not a rounded print
  EXPECT_NE(canonical_request_key(r), key);
  r = base;
  r.frames += 1;
  EXPECT_NE(canonical_request_key(r), key);
  // Identical requests share a key.
  EXPECT_EQ(canonical_request_key(base), canonical_request_key(AdvisorRequest{}));
}

TEST(CanonicalKeyTest, IgnoresDeadlineAndPriority) {
  // The QoS fields change WHEN a request is served, never WHAT it answers:
  // a hurried request must hit the cache entry its relaxed twin populated.
  const AdvisorRequest base;
  const std::string key = canonical_request_key(base);
  AdvisorRequest r = base;
  r.deadline_us = 12345;
  EXPECT_EQ(canonical_request_key(r), key);
  r = base;
  r.priority = 0;
  EXPECT_EQ(canonical_request_key(r), key);
  r = base;
  r.deadline_us = 999999;
  r.priority = 7;
  EXPECT_EQ(canonical_request_key(r), key);
}

// --- Response cache ---------------------------------------------------------

TEST(ResponseCacheTest, EvictsLeastRecentlyUsedInOrder) {
  ResponseCache cache(2, /*ways=*/1);  // one way: exact global LRU order
  cache.insert(0, 1, "a", ok_response(1.0));
  cache.insert(0, 1, "b", ok_response(2.0));
  AdvisorResponse out;
  ASSERT_TRUE(cache.lookup(0, 1, "a", out));  // refreshes a: LRU order is now b, a
  EXPECT_DOUBLE_EQ(out.frame_seconds, 1.0);

  cache.insert(0, 1, "c", ok_response(3.0));  // evicts b (least recently used)
  EXPECT_FALSE(cache.lookup(0, 1, "b", out));
  EXPECT_TRUE(cache.lookup(0, 1, "a", out));
  EXPECT_TRUE(cache.lookup(0, 1, "c", out));
  EXPECT_EQ(cache.size(), 2u);

  cache.insert(0, 1, "d", ok_response(4.0));  // now a is LRU (c, a after lookups)
  EXPECT_FALSE(cache.lookup(0, 1, "a", out));
  EXPECT_TRUE(cache.lookup(0, 1, "c", out));
  EXPECT_TRUE(cache.lookup(0, 1, "d", out));
}

TEST(ResponseCacheTest, DisabledCacheNeverHits) {
  ResponseCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(0, 1, "a", ok_response(1.0));
  AdvisorResponse out;
  EXPECT_FALSE(cache.lookup(0, 1, "a", out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResponseCacheTest, CountsLookupsAndHits) {
  ResponseCache cache(8);
  AdvisorResponse out;
  EXPECT_FALSE(cache.lookup(0, 1, "a", out));
  cache.insert(0, 1, "a", ok_response(1.0));
  EXPECT_TRUE(cache.lookup(0, 1, "a", out));
  EXPECT_EQ(cache.lookups(), 2);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ResponseCacheTest, PartitionQuotasAreStructural) {
  // 8 entries over 2 partitions: each partition owns 4 slots, and
  // flooding partition 0 with far more keys than the whole cache holds
  // cannot evict a single partition-1 entry — the quota is hard, not an
  // accounting policy (the cross-corpus eviction regression).
  ResponseCache cache(8, /*ways=*/1, /*partitions=*/2);
  EXPECT_EQ(cache.partitions(), 2u);
  EXPECT_EQ(cache.partition_capacity(0), 4u);
  EXPECT_EQ(cache.partition_capacity(1), 4u);
  cache.insert(1, 1, "keep-a", ok_response(1.0));
  cache.insert(1, 1, "keep-b", ok_response(2.0));
  for (int i = 0; i < 64; ++i)
    cache.insert(0, 1, "flood-" + std::to_string(i), ok_response(3.0));
  AdvisorResponse out;
  EXPECT_TRUE(cache.lookup(1, 1, "keep-a", out));
  EXPECT_TRUE(cache.lookup(1, 1, "keep-b", out));
  // The flood stayed inside its own quota.
  EXPECT_LE(cache.size(), cache.partition_capacity(0) + 2);
  // The same key bytes live independently per partition (corpus is part of
  // the canonical key anyway, but the partition alone already isolates).
  EXPECT_FALSE(cache.lookup(0, 1, "keep-a", out));
}

TEST(ResponseCacheTest, EveryPartitionHoldsAtLeastOneEntry) {
  // Fewer entries than partitions: each partition still gets one slot, so
  // a resident corpus is never structurally uncacheable.
  ResponseCache cache(2, /*ways=*/8, /*partitions=*/4);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_GE(cache.partition_capacity(p), 1u) << "partition " << p;
    cache.insert(p, 1, "k", ok_response(1.0));
    AdvisorResponse out;
    EXPECT_TRUE(cache.lookup(p, 1, "k", out)) << "partition " << p;
  }
}

TEST(ResponseCacheTest, EpochScopesHitsAndInvalidation) {
  ResponseCache cache(16, /*ways=*/1, /*partitions=*/2);
  cache.insert(0, 1, "a", ok_response(1.0));
  cache.insert(0, 2, "b", ok_response(2.0));
  cache.insert(1, 1, "c", ok_response(3.0));
  AdvisorResponse out;
  // A lookup pinned to a NEWER epoch misses an older entry and erases it
  // in passing; pinned to an OLDER epoch it misses a newer entry but
  // leaves it (post-swap traffic wants it).
  EXPECT_FALSE(cache.lookup(0, 2, "a", out));  // older entry: erased
  EXPECT_FALSE(cache.lookup(0, 1, "b", out));  // newer entry: left alone
  EXPECT_TRUE(cache.lookup(0, 2, "b", out));
  EXPECT_EQ(cache.size(), 2u);  // a gone, b and c alive

  // invalidate_stale sweeps ONE partition of entries older than the new
  // epoch; the other partition is untouched.
  cache.insert(0, 2, "d", ok_response(4.0));
  EXPECT_EQ(cache.invalidate_stale(0, 3), 2u);  // b and d (epoch 2 < 3)
  EXPECT_EQ(cache.invalidate_stale(0, 3), 0u);  // idempotent
  EXPECT_TRUE(cache.lookup(1, 1, "c", out));    // partition 1 untouched
}

// --- Batch queue ------------------------------------------------------------

TEST(BatchQueueTest, SizeFlushAtBatchSize) {
  core::BatchQueue<int> q(16);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(std::move(i)));
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(4, std::chrono::seconds(10), batch), core::BatchFlush::kSize);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.max_depth(), 8u);
}

TEST(BatchQueueTest, DeadlineFlushesPartialBatch) {
  core::BatchQueue<int> q(16);
  int v = 7;
  EXPECT_TRUE(q.try_push(std::move(v)));
  std::vector<int> batch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_batch(8, std::chrono::milliseconds(20), batch),
            core::BatchFlush::kDeadline);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch, std::vector<int>{7});
  EXPECT_GE(waited, std::chrono::milliseconds(15));  // really waited the deadline out
}

TEST(BatchQueueTest, CloseDrainsThenSignalsEmpty) {
  core::BatchQueue<int> q(16);
  int a = 1, b = 2;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  q.close();
  int c = 3;
  EXPECT_FALSE(q.try_push(std::move(c)));  // closed: no more admissions
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(8, std::chrono::seconds(10), batch), core::BatchFlush::kClosed);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(q.pop_batch(8, std::chrono::seconds(10), batch), core::BatchFlush::kEmpty);
  EXPECT_TRUE(batch.empty());
}

TEST(BatchQueueTest, BoundedRejectsWhenFull) {
  core::BatchQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_FALSE(q.try_push(std::move(c)));  // full; c stays with the caller
  std::vector<int> batch;
  q.pop_batch(1, std::chrono::seconds(10), batch);
  EXPECT_TRUE(q.try_push(std::move(c)));  // room again
}

TEST(BatchQueueTest, ReopenDiscardsLeftoversFromAnAbortedBurst) {
  // Items stranded by an aborted burst (producer exception) must not leak
  // into the next burst — their routing context died with the old batch.
  core::BatchQueue<int> q(8);
  int a = 1, b = 2;
  q.try_push(std::move(a));
  q.try_push(std::move(b));
  q.close();
  q.reopen();
  EXPECT_EQ(q.depth(), 0u);
  int c = 3;
  EXPECT_TRUE(q.try_push(std::move(c)));
  q.close();
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(8, std::chrono::seconds(10), batch), core::BatchFlush::kClosed);
  EXPECT_EQ(batch, std::vector<int>{3});
}

TEST(BatchQueueTest, WakesABlockedConsumerOnPush) {
  core::BatchQueue<int> q(4);
  std::vector<int> batch;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int v = 42;
    q.try_push(std::move(v));
  });
  // Blocks on the empty open queue until the producer's push arrives; the
  // deadline clock starts at first availability, so this returns promptly.
  EXPECT_EQ(q.pop_batch(8, std::chrono::milliseconds(1), batch),
            core::BatchFlush::kDeadline);
  EXPECT_EQ(batch, std::vector<int>{42});
  producer.join();
}

// --- Cluster determinism contract -------------------------------------------

// One registry fit shared by every cluster in the suite: the replication
// contract says shard replicas adopt rather than refit, so a shared primary
// keeps the whole file at a single calibration study.
class ClusterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    primary_ = std::make_shared<serve::ModelRegistry>();
  }
  static void TearDownTestSuite() { primary_.reset(); }
  static std::shared_ptr<serve::ModelRegistry> primary_;
};

std::shared_ptr<serve::ModelRegistry> ClusterFixture::primary_;

TEST_F(ClusterFixture, NShardResponsesIdenticalToOneShardSerial) {
  const std::vector<AdvisorRequest> requests = mixed_requests();

  ServingCluster reference(tiny_cluster_config(1, 1, 0), primary_);
  const std::vector<AdvisorResponse> expected = reference.serve_batch(requests);
  ASSERT_EQ(expected.size(), requests.size());

  for (const int shards : {2, 3, 4}) {
    for (const int threads : {1, 3, 4}) {
      ServingCluster cluster(tiny_cluster_config(shards, threads, 0), primary_);
      const std::vector<AdvisorResponse> got = cluster.serve_batch(requests);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(serve::responses_identical(expected[i], got[i]))
            << "shards " << shards << " threads " << threads << " slot " << i;
        EXPECT_EQ(serve::to_jsonl(expected[i]), serve::to_jsonl(got[i]))
            << "shards " << shards << " threads " << threads << " slot " << i;
      }
      // Replication, not refitting: the suite-wide fit count stays 1.
      EXPECT_EQ(cluster.registry_fits(), 1);
    }
  }
}

TEST_F(ClusterFixture, CacheHitsAreByteIdenticalToMisses) {
  const std::vector<AdvisorRequest> requests = mixed_requests();
  ServingCluster cluster(tiny_cluster_config(3, 4, 256), primary_);

  const std::vector<AdvisorResponse> cold = cluster.serve_batch(requests);  // all misses
  const std::vector<AdvisorResponse> warm = cluster.serve_batch(requests);  // all hits
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(serve::responses_identical(cold[i], warm[i])) << "slot " << i;
    EXPECT_EQ(serve::to_jsonl(cold[i]), serve::to_jsonl(warm[i])) << "slot " << i;
  }

  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.queries, static_cast<long>(2 * requests.size()));
  EXPECT_EQ(m.cache_lookups, static_cast<long>(2 * requests.size()));
  EXPECT_EQ(m.cache_hits, static_cast<long>(requests.size()));  // the warm pass
  EXPECT_DOUBLE_EQ(m.cache_hit_rate, 0.5);
  // Hits skip evaluation entirely: shards only ever saw the cold pass.
  long evaluated = 0;
  for (const long q : m.shard_queries) evaluated += q;
  EXPECT_EQ(evaluated, static_cast<long>(requests.size()));
}

TEST_F(ClusterFixture, CacheHitsAcrossDeadlinesAndPriorities) {
  // The canonical key excludes the QoS fields, and admission checks the
  // cache BEFORE the deadline: a hurried twin of a cached request gets the
  // cached answer (byte-identical) instead of an evaluation — or a shed.
  ServingCluster cluster(tiny_cluster_config(2, 2, 64), primary_);
  AdvisorRequest relaxed;
  relaxed.arch = "CPU1";
  relaxed.image_edge = 256;
  const std::vector<AdvisorResponse> cold = cluster.serve_batch({relaxed});
  ASSERT_TRUE(cold[0].ok());

  AdvisorRequest hurried = relaxed;
  hurried.deadline_us = 1;  // live admission would shed this on any backlog
  hurried.priority = 0;
  const std::vector<AdvisorResponse> warm = cluster.serve_batch({hurried});
  EXPECT_TRUE(warm[0].ok());
  EXPECT_FALSE(warm[0].shed());
  EXPECT_EQ(serve::to_jsonl(cold[0]), serve::to_jsonl(warm[0]));

  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.cache_hits, 1);
  EXPECT_EQ(m.shed_queries, 0);
}

TEST_F(ClusterFixture, BackpressureTinyQueueStillCorrect) {
  // A 2-deep queue against a 25-request batch keeps admission blocked on
  // backpressure constantly — responses must still be identical.
  const std::vector<AdvisorRequest> requests = mixed_requests();
  ClusterConfig config = tiny_cluster_config(2, 1, 0);  // serial pool: worst case
  config.queue_capacity = 2;
  config.batch_size = 2;
  ServingCluster cluster(std::move(config), primary_);
  const std::vector<AdvisorResponse> got = cluster.serve_batch(requests);

  ServingCluster reference(tiny_cluster_config(1, 1, 0), primary_);
  const std::vector<AdvisorResponse> expected = reference.serve_batch(requests);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(serve::responses_identical(expected[i], got[i])) << "slot " << i;
  EXPECT_LE(cluster.metrics().max_queue_depth, 2u);
}

TEST_F(ClusterFixture, MetricsJsonLineHasTheDocumentedShape)  {
  ServingCluster cluster(tiny_cluster_config(2, 2, 64), primary_);
  cluster.serve_batch(mixed_requests());
  const std::string line = cluster.metrics().to_jsonl();
  for (const char* key :
       {"\"shards\":", "\"queries\":", "\"shard_queries\":[",
        "\"corpus_queries\":{\"default\":", "\"unknown_corpus_queries\":",
        "\"bundle_epoch\":{\"default\":", "\"refits\":", "\"lazy_fits\":",
        "\"epoch_invalidations\":",
        "\"streams\":", "\"shed_queries\":",
        "\"rebalanced_queries\":", "\"hot_keys\":", "\"cache_lookups\":",
        "\"cache_hits\":", "\"cache_hit_rate\":", "\"batches\":", "\"size_flushes\":",
        "\"deadline_flushes\":", "\"kick_flushes\":", "\"close_flushes\":",
        "\"max_queue_depth\":", "\"p50_latency_ms\":", "\"p99_latency_ms\":"})
    EXPECT_NE(line.find(key), std::string::npos) << key << " missing from " << line;
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST_F(ClusterFixture, JsonlFrontEndRoutesThroughTheCluster) {
  // The same wiring example_feasibility_advisor --serve uses: run_jsonl
  // with the cluster's serve_batch as the batch handler.
  ServingCluster cluster(tiny_cluster_config(2, 2, 64), primary_);
  std::istringstream in(
      "{\"arch\":\"CPU1\",\"renderer\":\"raytrace\",\"image_edge\":256}\n"
      "garbage\n"
      "{\"arch\":\"GPU1\",\"renderer\":\"volume\",\"n_per_task\":24,\"tasks\":2}\n");
  std::ostringstream out;
  const std::size_t answered = serve::run_jsonl(
      in, out, [&cluster](const std::vector<AdvisorRequest>& requests) {
        return cluster.serve_batch(requests);
      });
  EXPECT_EQ(answered, 3u);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[1].find("parse error"), std::string::npos);
  EXPECT_NE(responses[2].find("\"ok\":true"), std::string::npos);
}

TEST_F(ClusterFixture, ConcurrentServeBatchCallersGetCorrectResponses) {
  // serve_batch serializes overlapping batches internally; four threads
  // hammering one cluster must each get the full, correct response vector.
  const std::vector<AdvisorRequest> requests = mixed_requests();
  ServingCluster reference(tiny_cluster_config(1, 1, 0), primary_);
  const std::vector<AdvisorResponse> expected = reference.serve_batch(requests);

  ServingCluster cluster(tiny_cluster_config(2, 2, 64), primary_);
  std::vector<std::vector<AdvisorResponse>> got(4);
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&cluster, &requests, &got, t] {
      got[static_cast<std::size_t>(t)] = cluster.serve_batch(requests);
    });
  for (std::thread& caller : callers) caller.join();

  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(got[static_cast<std::size_t>(t)].size(), expected.size()) << "caller " << t;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_TRUE(serve::responses_identical(expected[i], got[static_cast<std::size_t>(t)][i]))
          << "caller " << t << " slot " << i;
  }
}

TEST(ClusterTest, EmptyBatchDoesNotTriggerCalibration) {
  ServingCluster cluster(tiny_cluster_config(4, 2, 64));
  EXPECT_TRUE(cluster.serve_batch({}).empty());
  EXPECT_EQ(cluster.registry_fits(), 0);
}

// --- Multi-corpus serving ---------------------------------------------------

// A second tiny corpus: same shape, different seed — a distinct calibration
// fingerprint, so the cluster must fit it separately.
model::StudyConfig tiny_calibration_b() {
  model::StudyConfig cfg = tiny_calibration();
  cfg.seed = 124;
  return cfg;
}

ClusterConfig two_corpus_config(int shards, int threads, std::size_t cache_entries) {
  ClusterConfig cfg = tiny_cluster_config(shards, threads, cache_entries);
  CorpusConfig alt;
  alt.name = "alt";
  alt.service.calibration = tiny_calibration_b();
  cfg.corpora.push_back(std::move(alt));
  return cfg;
}

// A batch split across both resident corpora: every request of the mixed
// shape once under the default corpus, once under "alt".
std::vector<AdvisorRequest> two_corpus_requests() {
  std::vector<AdvisorRequest> requests = mixed_requests();
  const std::size_t single = requests.size();
  for (std::size_t i = 0; i < single; ++i) {
    AdvisorRequest req = requests[i];
    req.corpus = "alt";
    requests.push_back(std::move(req));
  }
  return requests;
}

TEST_F(ClusterFixture, UnknownCorpusSelectorGetsInSlotError) {
  ServingCluster cluster(tiny_cluster_config(2, 2, 0), primary_);
  std::vector<AdvisorRequest> requests(3);
  requests[1].corpus = "nope";
  const std::vector<AdvisorResponse> responses = cluster.serve_batch(requests);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_NE(responses[1].error.find("unknown corpus \"nope\""), std::string::npos)
      << responses[1].error;
  EXPECT_TRUE(responses[2].ok());

  // The bad slot never reached the cache or a shard.
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.queries, 3);
  EXPECT_EQ(m.unknown_corpus_queries, 1);
  long evaluated = 0;
  for (const long q : m.shard_queries) evaluated += q;
  EXPECT_EQ(evaluated, 2);
  EXPECT_EQ(cluster.corpus_fingerprint("nope"), 0u);
}

TEST(MultiCorpusTest, TwoFingerprintsFitExactlyTwiceAtAnyShardCount) {
  // One local primary shared by every cluster in the loop: the two corpora
  // are fitted once each, no matter how many shards (or clusters) serve
  // them, and responses stay byte-identical to the 1-shard serial run.
  const auto primary = std::make_shared<serve::ModelRegistry>();
  const std::vector<AdvisorRequest> requests = two_corpus_requests();

  ServingCluster reference(two_corpus_config(1, 1, 0), primary);
  EXPECT_NE(reference.corpus_fingerprint(""), reference.corpus_fingerprint("alt"));
  EXPECT_EQ(reference.corpora(), 2);
  const std::vector<AdvisorResponse> expected = reference.serve_batch(requests);
  EXPECT_EQ(reference.registry_fits(), 2);

  for (const int shards : {2, 3, 4}) {
    ServingCluster cluster(two_corpus_config(shards, 3, 0), primary);
    const std::vector<AdvisorResponse> got = cluster.serve_batch(requests);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(serve::responses_identical(expected[i], got[i]))
          << "shards " << shards << " slot " << i;
      EXPECT_EQ(serve::to_jsonl(expected[i]), serve::to_jsonl(got[i]))
          << "shards " << shards << " slot " << i;
    }
    EXPECT_EQ(cluster.registry_fits(), 2);
  }

  // The two corpora really are different models: the same request answered
  // under each gives different predictions (distinct calibration seeds).
  const std::size_t single = requests.size() / 2;
  int differing = 0;
  for (std::size_t i = 0; i < single; ++i)
    if (expected[i].ok() && expected[i + single].ok() &&
        serve::to_jsonl(expected[i]) != serve::to_jsonl(expected[i + single]))
      ++differing;
  EXPECT_GT(differing, 0);
}

TEST(MultiCorpusTest, CacheEntriesNeverCollideAcrossCorpora) {
  // Key level: two requests differing only in corpus have distinct
  // canonical keys.
  AdvisorRequest base;
  AdvisorRequest alt = base;
  alt.corpus = "alt";
  EXPECT_NE(canonical_request_key(base), canonical_request_key(alt));

  // Cluster level: a warm multi-corpus pass answers every slot from the
  // cache — and each corpus's slots come back as that corpus's responses,
  // byte-identical to the cold pass.
  const auto primary = std::make_shared<serve::ModelRegistry>();
  const std::vector<AdvisorRequest> requests = two_corpus_requests();
  ServingCluster cluster(two_corpus_config(3, 3, 512), primary);
  const std::vector<AdvisorResponse> cold = cluster.serve_batch(requests);
  const std::vector<AdvisorResponse> warm = cluster.serve_batch(requests);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(serve::to_jsonl(cold[i]), serve::to_jsonl(warm[i])) << "slot " << i;

  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.cache_hits, static_cast<long>(requests.size()));  // the warm pass
  ASSERT_EQ(m.corpus_queries.size(), 2u);
  EXPECT_EQ(m.corpus_queries[0].first, "");
  EXPECT_EQ(m.corpus_queries[1].first, "alt");
  EXPECT_EQ(m.corpus_queries[0].second, static_cast<long>(requests.size()));
  EXPECT_EQ(m.corpus_queries[1].second, static_cast<long>(requests.size()));
  EXPECT_EQ(m.unknown_corpus_queries, 0);
}

TEST(MultiCorpusTest, OneCorpusFloodCannotEvictAnotherCorpusEntries) {
  // The cross-corpus eviction regression: the cache is hard-partitioned
  // per corpus, so a flood of distinct default-corpus requests — more than
  // the ENTIRE cache holds — cannot push out "alt"'s warm entries.
  const auto primary = std::make_shared<serve::ModelRegistry>();
  ServingCluster cluster(two_corpus_config(2, 2, 64), primary);
  AdvisorRequest alt_a, alt_b;
  alt_a.corpus = "alt";
  alt_a.image_edge = 256;
  alt_b.corpus = "alt";
  alt_b.image_edge = 512;
  cluster.serve_batch({alt_a, alt_b});  // warm alt's partition

  std::vector<AdvisorRequest> flood;
  for (int i = 0; i < 96; ++i) {  // 96 distinct keys >> 64-entry cache
    AdvisorRequest r;
    r.image_edge = 64 + i;
    flood.push_back(std::move(r));
  }
  cluster.serve_batch(flood);

  const long hits_before = cluster.metrics().cache_hits;
  const std::vector<AdvisorResponse> warm = cluster.serve_batch({alt_a, alt_b});
  EXPECT_TRUE(warm[0].ok());
  EXPECT_TRUE(warm[1].ok());
  EXPECT_EQ(cluster.metrics().cache_hits - hits_before, 2);
}

TEST(MultiCorpusTest, ReservedDuplicateAndEmptyCorpusNamesAreIgnored) {
  ClusterConfig cfg = two_corpus_config(2, 1, 0);
  CorpusConfig dup;  // duplicate of "alt" with a different calibration
  dup.name = "alt";
  dup.service.calibration = tiny_calibration();
  cfg.corpora.push_back(dup);
  CorpusConfig anonymous;  // "" is reserved for the default corpus
  anonymous.service.calibration = tiny_calibration_b();
  cfg.corpora.push_back(anonymous);
  CorpusConfig reserved;  // "default" is the metrics alias of the default
  reserved.name = "default";
  reserved.service.calibration = tiny_calibration_b();
  cfg.corpora.push_back(reserved);
  ServingCluster cluster(std::move(cfg));
  EXPECT_EQ(cluster.corpora(), 2);  // default + the first "alt" only
  EXPECT_EQ(cluster.corpus_fingerprint("alt"),
            serve::ModelRegistry::fingerprint(tiny_calibration_b()));
  EXPECT_EQ(cluster.corpus_fingerprint("default"), 0u);  // not resident
}

TEST(MultiCorpusTest, SharedCalibrationDistinctConstantsStaySeparate) {
  // Two corpora over ONE calibration (one fit) that differ only in mapping
  // constants: the replica key covers the constants, so each corpus's
  // requests evaluate under its own constants — not the first adopter's.
  ClusterConfig cfg = tiny_cluster_config(2, 2, 0);
  CorpusConfig dense;
  dense.name = "dense";
  dense.service.calibration = tiny_calibration();  // same fingerprint
  dense.service.constants.spr_base = 990.0;        // explicit, much denser
  cfg.corpora.push_back(std::move(dense));
  ServingCluster cluster(std::move(cfg));
  EXPECT_EQ(cluster.corpus_fingerprint(""), cluster.corpus_fingerprint("dense"));

  AdvisorRequest volume;  // spr_base feeds the volume model's SPR term
  volume.renderer = model::RendererKind::kVolume;
  AdvisorRequest dense_volume = volume;
  dense_volume.corpus = "dense";
  const std::vector<AdvisorResponse> responses =
      cluster.serve_batch({volume, dense_volume});
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].ok()) << responses[0].error;
  ASSERT_TRUE(responses[1].ok()) << responses[1].error;
  EXPECT_NE(responses[0].frame_seconds, responses[1].frame_seconds);
  EXPECT_EQ(cluster.registry_fits(), 1);  // one calibration, one fit
}

// --- Percentiles ------------------------------------------------------------

TEST(PercentileTest, NearestRank) {
  const std::vector<double> samples = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  // A single sample answers every percentile.
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 7.0);
}

TEST(PercentileTest, MultiPercentileMatchesRepeatedSingleCalls) {
  // percentiles() sorts once and answers many; it must agree with the
  // one-at-a-time API on every rank, keep results aligned with the ps
  // order (unsorted ps included), and zero-fill on empty input.
  std::vector<double> samples = {5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.5};
  const std::vector<double> reference = samples;  // percentile() copies; keep one
  const std::vector<double> ps = {99.0, 0.0, 50.0, 100.0, 90.0, 10.0};
  const std::vector<double> got = percentiles(samples, ps);
  ASSERT_EQ(got.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], percentile(reference, ps[i])) << "p" << ps[i];

  std::vector<double> empty;
  const std::vector<double> zeros = percentiles(empty, ps);
  ASSERT_EQ(zeros.size(), ps.size());
  for (const double z : zeros) EXPECT_DOUBLE_EQ(z, 0.0);
}

}  // namespace
}  // namespace isr::cluster
