#include <gtest/gtest.h>
TEST(Smoke, Builds) { EXPECT_TRUE(true); }
