// Tests for the Conduit-like Node (paths, typed leaves, zero-copy external
// arrays, coercions, introspection) and the mesh blueprint conventions.
#include <gtest/gtest.h>

#include "conduit/blueprint.hpp"
#include "conduit/node.hpp"
#include "mesh/structured.hpp"

namespace isr::conduit {
namespace {

TEST(Node, PathCreationAndFetch) {
  Node n;
  n["state/time"] = 1.5;
  n["state/cycle"] = 42;
  n["coords/type"] = "uniform";
  EXPECT_TRUE(n.has_path("state/time"));
  EXPECT_TRUE(n.has_path("state"));
  EXPECT_FALSE(n.has_path("state/missing"));
  EXPECT_DOUBLE_EQ(n["state/time"].as_float64(), 1.5);
  EXPECT_EQ(n["state/cycle"].as_int64(), 42);
  EXPECT_EQ(n["coords/type"].as_string(), "uniform");
}

TEST(Node, MissingPathThrows) {
  Node n;
  n["a/b"] = 1;
  const Node& cn = n;
  EXPECT_THROW(cn["a/c"], std::runtime_error);
  EXPECT_THROW(cn.fetch_existing("nope"), std::runtime_error);
}

TEST(Node, TypeMismatchThrows) {
  Node n;
  n["x"] = 3.0;
  EXPECT_THROW(n["x"].as_int64(), std::runtime_error);
  EXPECT_THROW(n["x"].as_string(), std::runtime_error);
  EXPECT_NO_THROW(n["x"].as_float64());
}

TEST(Node, LeafCannotGrowChildren) {
  Node n;
  n["x"] = 3.0;
  EXPECT_THROW(n["x/child"], std::runtime_error);
}

TEST(Node, OwnedArrayCopies) {
  Node n;
  std::vector<float> data = {1, 2, 3};
  n["values"].set(data);
  data[0] = 99;  // must not affect the node
  EXPECT_FLOAT_EQ(n["values"].as_float32_array()[0], 1.0f);
  EXPECT_FALSE(n["values"].is_external());
  EXPECT_EQ(n["values"].element_count(), 3u);
}

TEST(Node, ExternalArrayIsZeroCopy) {
  Node n;
  std::vector<double> data = {1, 2, 3};
  n["values"].set_external(data);
  data[1] = 42.0;  // visible through the node: no copy was made
  EXPECT_DOUBLE_EQ(n["values"].as_float64_array()[1], 42.0);
  EXPECT_TRUE(n["values"].is_external());
  EXPECT_EQ(n["values"].owned_bytes(), 0u);
  EXPECT_EQ(n["values"].total_bytes(), 24u);
}

TEST(Node, ExternalScalarPointer) {
  Node n;
  double time = 0.5;
  n["time"].set_external(&time);
  time = 2.5;
  EXPECT_DOUBLE_EQ(n["time"].to_float64(), 2.5);
}

TEST(Node, CoercionsAcrossNumericTypes) {
  Node n;
  n["i"] = 7;
  n["f"] = 2.25;
  EXPECT_DOUBLE_EQ(n["i"].to_float64(), 7.0);
  EXPECT_EQ(n["f"].to_int64(), 2);
  std::vector<int> iv = {1, 2, 3};
  std::vector<double> dv = {1.5, 2.5};
  n["ia"].set(iv.data(), iv.size());
  n["da"].set(dv.data(), dv.size());
  EXPECT_EQ(n["ia"].to_int32_vector(), iv);
  const auto fa = n["da"].to_float32_vector();
  EXPECT_FLOAT_EQ(fa[1], 2.5f);
  EXPECT_THROW(n["ia"].as_float32_array(), std::runtime_error);
}

TEST(Node, AppendBuildsActionLists) {
  Node actions;
  Node& add = actions.append();
  add["action"] = "AddPlot";
  add["var"] = "p";
  Node& draw = actions.append();
  draw["action"] = "DrawPlots";
  ASSERT_EQ(actions.child_count(), 2u);
  EXPECT_EQ(actions.child(0)["action"].as_string(), "AddPlot");
  EXPECT_EQ(actions.child(1)["action"].as_string(), "DrawPlots");
}

TEST(Node, JsonIntrospection) {
  Node n;
  n["state/cycle"] = 3;
  std::vector<float> v = {1, 2};
  n["fields/e/values"].set_external(v);
  const std::string json = n.to_json();
  EXPECT_NE(json.find("\"cycle\": 3"), std::string::npos);
  EXPECT_NE(json.find("float32[]"), std::string::npos);
  EXPECT_NE(json.find("\"external\": true"), std::string::npos);
}

TEST(Node, ChildNamesPreserveOrder) {
  Node n;
  n["zebra"] = 1;
  n["alpha"] = 2;
  const auto names = n.child_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "zebra");  // insertion order, not sorted
  EXPECT_EQ(names[1], "alpha");
}

// --- Blueprint conventions -------------------------------------------------

Node valid_uniform_mesh() {
  Node n;
  n["coords/type"] = "uniform";
  n["coords/dims/i"] = 4;
  n["coords/dims/j"] = 4;
  n["coords/dims/k"] = 4;
  n["coords/origin/x"] = 0.0;
  n["coords/origin/y"] = 0.0;
  n["coords/origin/z"] = 0.0;
  n["coords/spacing/dx"] = 0.25;
  n["coords/spacing/dy"] = 0.25;
  n["coords/spacing/dz"] = 0.25;
  n["topology/type"] = "uniform";
  return n;
}

TEST(Blueprint, ValidUniformMeshVerifies) {
  Node n = valid_uniform_mesh();
  std::vector<double> field(64, 1.0);
  n["fields/e/association"] = "element";
  n["fields/e/values"].set_external(field);
  std::string err;
  EXPECT_TRUE(blueprint::verify_mesh(n, err)) << err;
  EXPECT_TRUE(err.empty());
}

TEST(Blueprint, MissingPiecesFailVerify) {
  std::string err;
  Node empty;
  EXPECT_FALSE(blueprint::verify_mesh(empty, err));
  EXPECT_NE(err.find("coords/type"), std::string::npos);

  Node n = valid_uniform_mesh();
  std::vector<double> field(64, 1.0);
  n["fields/e/values"].set_external(field);  // no association
  EXPECT_FALSE(blueprint::verify_mesh(n, err));
  EXPECT_NE(err.find("association"), std::string::npos);
}

TEST(Blueprint, BadCoordsTypeFails) {
  Node n = valid_uniform_mesh();
  n["coords/type"] = "curvilinear";
  std::string err;
  EXPECT_FALSE(blueprint::verify_mesh(n, err));
}

TEST(Blueprint, ToStructuredVertexField) {
  Node n = valid_uniform_mesh();
  std::vector<double> field(125);  // 5^3 points
  for (std::size_t i = 0; i < field.size(); ++i) field[i] = static_cast<double>(i);
  n["fields/v/association"] = "vertex";
  n["fields/v/values"].set_external(field);
  const mesh::StructuredGrid grid = blueprint::to_structured(n, "v");
  EXPECT_EQ(grid.nx(), 4);
  EXPECT_EQ(grid.point_count(), 125u);
  EXPECT_FLOAT_EQ(grid.scalars()[7], 7.0f);
}

TEST(Blueprint, ToStructuredElementFieldAveragesConstant) {
  Node n = valid_uniform_mesh();
  std::vector<double> field(64, 3.0);  // constant element field
  n["fields/e/association"] = "element";
  n["fields/e/values"].set_external(field);
  const mesh::StructuredGrid grid = blueprint::to_structured(n, "e");
  for (const float v : grid.scalars()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(Blueprint, ToStructuredSizeMismatchThrows) {
  Node n = valid_uniform_mesh();
  std::vector<double> field(10, 1.0);
  n["fields/e/association"] = "element";
  n["fields/e/values"].set_external(field);
  EXPECT_THROW(blueprint::to_structured(n, "e"), std::runtime_error);
}

TEST(Blueprint, HexMeshRoundTrip) {
  // A single unit hex.
  Node n;
  std::vector<float> x = {0, 1, 1, 0, 0, 1, 1, 0};
  std::vector<float> y = {0, 0, 1, 1, 0, 0, 1, 1};
  std::vector<float> z = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> conn = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> e = {2.0};
  n["coords/type"] = "explicit";
  n["coords/x"].set_external(x);
  n["coords/y"].set_external(y);
  n["coords/z"].set_external(z);
  n["topology/type"] = "unstructured";
  n["topology/elements/shape"] = "hexs";
  n["topology/elements/connectivity"].set_external(conn.data(), conn.size());
  n["fields/e/association"] = "element";
  n["fields/e/values"].set_external(e);
  std::string err;
  ASSERT_TRUE(blueprint::verify_mesh(n, err)) << err;
  const mesh::HexMesh hexes = blueprint::to_hex_mesh(n, "e");
  EXPECT_EQ(hexes.cell_count(), 1u);
  EXPECT_EQ(hexes.points.size(), 8u);
  for (const float s : hexes.scalars) EXPECT_FLOAT_EQ(s, 2.0f);
}

}  // namespace
}  // namespace isr::conduit
