#!/usr/bin/env python3
"""Bench-regression gate for the throughput trackers.

Each throughput bench prints one machine-readable ``JSON {...}`` line; CI
captures it to ``<name>.json`` and this script compares every throughput
field (``qps_*`` / ``obs_per_sec_*``) against the committed baseline in
``bench/baselines/<name>.json``.

The tolerance is deliberately generous: CI runners vary wildly, so only a
collapse — current throughput below baseline/FACTOR (default 2x) — fails.
Improvements are reported but never fail, latency percentiles (``p99_*``)
only WARN when they blow past 2x baseline (tails are even noisier than
throughput on shared runners), and the nightly job uploads
freshly measured baselines as artifacts so the committed ones can be
refreshed when hardware or the benches change shape.

Usage:
    check_bench_regression.py --baseline-dir bench/baselines \
        --current-dir build/bench_out [--max-regression 2.0]

Exit status: 0 when every throughput field of every baseline holds up,
1 on a regression, missing current file, or malformed JSON.
"""

import argparse
import json
import pathlib
import sys

THROUGHPUT_PREFIXES = ("qps_", "obs_per_sec_")

# Latency percentiles are advisory: CI runner jitter makes tail latency far
# noisier than throughput, so a blown p99_* prints a WARN for a human to
# read but never fails the gate.
LATENCY_PREFIXES = ("p99_",)
LATENCY_WARN_FACTOR = 2.0


def throughput_fields(record):
    return {
        key: value
        for key, value in record.items()
        if key.startswith(THROUGHPUT_PREFIXES) and isinstance(value, (int, float))
    }


def latency_fields(record):
    return {
        key: value
        for key, value in record.items()
        if key.startswith(LATENCY_PREFIXES) and isinstance(value, (int, float))
    }


def load_record(path):
    """Parse one bench JSON file into a dict, or return (None, reason).

    Every failure mode an interrupted bench or a truncated artifact can
    produce — unreadable file, invalid JSON, or a JSON value that is not an
    object — comes back as a one-line reason for a clean FAIL, never a
    traceback.
    """
    try:
        text = path.read_text()
    except OSError as err:
        return None, f"unreadable ({err.strerror or err})"
    try:
        record = json.loads(text)
    except json.JSONDecodeError as err:
        return None, f"malformed JSON ({err})"
    if not isinstance(record, dict):
        return None, f"expected a JSON object, got {type(record).__name__}"
    return record, None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True, type=pathlib.Path)
    parser.add_argument("--current-dir", required=True, type=pathlib.Path)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when current < baseline / FACTOR (default: 2.0)",
    )
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("*.json"))
    if not baselines:
        print(f"error: no baselines found in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = 0
    for baseline_path in baselines:
        current_path = args.current_dir / baseline_path.name
        if not current_path.exists():
            print(f"FAIL {baseline_path.name}: no current result at {current_path}")
            failures += 1
            continue
        baseline, reason = load_record(baseline_path)
        if baseline is None:
            print(f"FAIL {baseline_path.name}: baseline {reason}")
            failures += 1
            continue
        current, reason = load_record(current_path)
        if current is None:
            print(f"FAIL {baseline_path.name}: current result {reason}")
            failures += 1
            continue

        fields = throughput_fields(baseline)
        if not fields:
            print(f"FAIL {baseline_path.name}: baseline has no qps_*/obs_per_sec_* fields")
            failures += 1
            continue

        for key, base_value in sorted(fields.items()):
            if base_value <= 0:
                continue  # a zero baseline cannot regress
            value = current.get(key)
            if not isinstance(value, (int, float)):
                print(f"FAIL {baseline_path.name}: {key} missing from current result")
                failures += 1
                continue
            ratio = value / base_value
            if ratio < 1.0 / args.max_regression:
                print(
                    f"FAIL {baseline_path.name}: {key} {value:.1f} vs baseline "
                    f"{base_value:.1f} ({ratio:.2f}x, limit {1.0 / args.max_regression:.2f}x)"
                )
                failures += 1
            else:
                print(
                    f"  ok {baseline_path.name}: {key} {value:.1f} vs baseline "
                    f"{base_value:.1f} ({ratio:.2f}x)"
                )

        for key, base_value in sorted(latency_fields(baseline).items()):
            if base_value <= 0:
                continue
            value = current.get(key)
            if not isinstance(value, (int, float)):
                continue  # latency fields are advisory; absence is not a failure
            ratio = value / base_value
            if ratio > LATENCY_WARN_FACTOR:
                print(
                    f"WARN {baseline_path.name}: {key} {value:.1f} vs baseline "
                    f"{base_value:.1f} ({ratio:.2f}x above; advisory only)"
                )

    if failures:
        print(f"\n{failures} bench regression check(s) failed "
              f"(>{args.max_regression:.1f}x below baseline)")
        return 1
    print("\nall bench regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
