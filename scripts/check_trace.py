#!/usr/bin/env python3
"""CI validator for Chrome trace_event files emitted by --trace.

Checks, in order:

1. The file is valid JSON with the expected wrapper shape
   (``traceEvents`` list plus ``otherData`` counters).
2. Every event carries the required keys for its phase: complete spans
   (``ph == "X"``) need ``dur``, instants (``ph == "i"``) need the
   thread scope ``"s": "t"``; all events need name/cat/ts/pid/tid and
   the ``stream``/``seq`` request key in ``args``.
3. No span ends before it begins (``dur >= 0``) and no timestamp is
   negative.
4. Per request — the ``(stream, seq)`` pairs of ``cat == "req"``
   events — the lifecycle chain is complete: exactly one ``admit``,
   exactly one terminal event (``deliver`` or ``shed``), the admit is
   the earliest timestamp of the chain (ties allowed), and no
   queue/eval span outlives the terminal's timestamp. Retries may
   legally contribute extra queue/eval spans, so multiplicity of the
   middle stages is not constrained.

Exit status: 0 when the trace is coherent, 1 otherwise (every problem
is printed, not just the first). A trace with zero request events is an
error — the smoke test that feeds this script always serves requests.

Usage:
    check_trace.py TRACE_FILE [--allow-drops]

Dropped events (ring overflow) can legitimately orphan chains, so drops
fail validation unless --allow-drops is passed; the CI smoke workload is
far below the default ring capacity and must never drop.
"""

import argparse
import json
import pathlib
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid", "args")
TERMINAL_NAMES = ("deliver", "shed")


def load_trace(path):
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return None, f"{path}: unreadable or invalid JSON: {err}"
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        return None, f"{path}: missing traceEvents list"
    if not isinstance(payload.get("otherData"), dict):
        return None, f"{path}: missing otherData counters"
    return payload, None


def check_event_shape(index, event, problems):
    """Structural checks on one event; returns False when too malformed
    to participate in the per-request chain checks."""
    if not isinstance(event, dict):
        problems.append(f"event {index}: not an object")
        return False
    for key in REQUIRED_KEYS:
        if key not in event:
            problems.append(f"event {index}: missing {key!r}")
            return False
    args = event["args"]
    if not isinstance(args, dict) or "stream" not in args or "seq" not in args:
        problems.append(f"event {index} ({event['name']}): args lacks stream/seq")
        return False
    label = f"event {index} ({event['name']} stream={args['stream']} seq={args['seq']})"
    if event["ts"] < 0:
        problems.append(f"{label}: negative ts {event['ts']}")
    if event["ph"] == "X":
        if "dur" not in event:
            problems.append(f"{label}: complete span without dur")
            return False
        if event["dur"] < 0:
            problems.append(f"{label}: ends before it begins (dur={event['dur']})")
    elif event["ph"] == "i":
        if event.get("s") != "t":
            problems.append(f"{label}: instant without thread scope s=t")
    else:
        problems.append(f"{label}: unexpected phase {event['ph']!r}")
    return True


def check_request_chain(key, events, problems):
    label = f"request stream={key[0]} seq={key[1]}"
    admits = [e for e in events if e["name"] == "admit"]
    terminals = [e for e in events if e["name"] in TERMINAL_NAMES]
    if len(admits) != 1:
        problems.append(f"{label}: {len(admits)} admit events, want exactly 1")
    if len(terminals) != 1:
        names = [e["name"] for e in terminals] or ["none"]
        problems.append(f"{label}: {len(terminals)} terminal events ({', '.join(names)}), want exactly 1")
    if not admits or not terminals:
        return
    admit_ts = admits[0]["ts"]
    first_ts = min(e["ts"] for e in events)
    if admit_ts > first_ts:
        problems.append(f"{label}: admit at {admit_ts} is not the earliest event ({first_ts})")
    end_ts = terminals[0]["ts"]
    for e in events:
        span_end = e["ts"] + e.get("dur", 0)
        if span_end > end_ts:
            problems.append(
                f"{label}: {e['name']} runs to {span_end}, past the "
                f"{terminals[0]['name']} at {end_ts}"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument(
        "--allow-drops",
        action="store_true",
        help="tolerate ring-overflow drops (orphaned chains are then only structural warnings)",
    )
    options = parser.parse_args(argv)

    payload, err = load_trace(options.trace)
    if err:
        print(f"FAIL {err}")
        return 1

    problems = []
    dropped = payload["otherData"].get("dropped", 0)
    if dropped and not options.allow_drops:
        problems.append(f"trace dropped {dropped} events (ring overflow); rerun with a larger ring")

    requests = {}
    for index, event in enumerate(payload["traceEvents"]):
        if not check_event_shape(index, event, problems):
            continue
        if event["cat"] == "req":
            key = (event["args"]["stream"], event["args"]["seq"])
            requests.setdefault(key, []).append(event)

    if not requests:
        problems.append("trace contains no request-lifecycle events")
    if not (dropped and options.allow_drops):
        for key in sorted(requests):
            check_request_chain(key, requests[key], problems)

    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"check_trace: {len(problems)} problem(s) in {options.trace}")
        return 1
    print(
        f"check_trace: OK — {len(payload['traceEvents'])} events, "
        f"{len(requests)} complete request chains, {dropped} dropped"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
